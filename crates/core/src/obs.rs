//! Bridge from the solver's deterministic run statistics to the
//! `uavnet-obs` facade.
//!
//! The sweep keeps its own aggregation ([`ApproxStats`] /
//! [`SweepProfile`](crate::SweepProfile)) because those numbers are
//! part of the public stats API and must stay deterministic and
//! thread-count invariant. This module mirrors them into the obs
//! counters/phases once per run and emits one structured `"sweep"`
//! run event, so an active obs session sees the same values the
//! caller gets — nothing is computed twice and nothing observable
//! changes when no session is recording.

use crate::approx::{ApproxConfig, ApproxStats};
use crate::solution::Solution;
use uavnet_obs::{counters, emit_run, phases};

/// Records one completed subset sweep into the active obs session:
/// folds the per-phase nanoseconds into the obs phases, bumps the
/// sweep counters and emits a `"sweep"` run event. No-op (down to an
/// empty inlined body without the `obs` feature) when no session is
/// active.
pub(crate) fn record_sweep(config: &ApproxConfig, stats: &ApproxStats, solution: &Solution) {
    if !uavnet_obs::session_active() {
        return;
    }
    counters::SWEEP_RUNS.add(1);
    counters::SWEEP_SUBSETS_ENUMERATED.add(stats.subsets_enumerated as u64);
    counters::SWEEP_SUBSETS_CHAIN_PRUNED.add(stats.subsets_chain_pruned as u64);
    counters::SWEEP_SUBSETS_EVALUATED.add(stats.subsets_evaluated as u64);
    counters::SWEEP_SUBSETS_UNCONNECTABLE.add(stats.subsets_unconnectable as u64);
    counters::SWEEP_GAIN_QUERIES.add(stats.gain_queries);
    // Shard metrics only exist for the sharded path; keeping them
    // silent for monolithic sweeps keeps those snapshots unchanged.
    if stats.tiles_solved > 0 {
        counters::SHARD_TILES.add(stats.tiles_solved as u64);
        counters::SHARD_VIEW_ESCAPES.add(stats.view_escapes as u64);
    }
    // Likewise, strategy metrics only appear when a guided strategy
    // actually ran.
    match config.strategy() {
        crate::strategy::SeedStrategyKind::Exhaustive => {}
        crate::strategy::SeedStrategyKind::BoundPruned => {
            counters::STRATEGY_GUIDED_RUNS.add(1);
            counters::STRATEGY_BOUND_PRUNED.add(stats.subsets_bound_pruned as u64);
        }
        crate::strategy::SeedStrategyKind::Beam { .. } => {
            counters::STRATEGY_GUIDED_RUNS.add(1);
            counters::STRATEGY_BEAM_EVALUATIONS.add(stats.subsets_evaluated as u64);
        }
    }

    let p = &stats.profile;
    phases::ENUMERATION.record_ns(p.enumeration_ns);
    phases::GREEDY.record_ns(p.greedy_ns);
    phases::CONNECTION.record_ns(p.connection_ns);
    phases::SCORING.record_ns(p.scoring_ns);
    phases::SUBSTRATE_QUERY.record_ns(p.substrate_query_ns);
    if p.tile_view_ns > 0 {
        phases::TILE_VIEW.record_ns(p.tile_view_ns);
    }

    emit_run(
        "sweep",
        &[
            ("s", config.s() as u64),
            ("threads", config.num_threads() as u64),
            ("seed_pool", stats.seed_pool_size as u64),
            ("subsets_enumerated", stats.subsets_enumerated as u64),
            ("subsets_chain_pruned", stats.subsets_chain_pruned as u64),
            ("subsets_bound_pruned", stats.subsets_bound_pruned as u64),
            ("subsets_evaluated", stats.subsets_evaluated as u64),
            ("subsets_unconnectable", stats.subsets_unconnectable as u64),
            ("gain_queries", stats.gain_queries),
            ("tiles_solved", stats.tiles_solved as u64),
            ("view_escapes", stats.view_escapes as u64),
            ("served_users", solution.served_users() as u64),
            ("deployed_uavs", solution.deployment().len() as u64),
        ],
    );
}
