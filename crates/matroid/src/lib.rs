//! Matroids and monotone submodular maximization (§II-E, §III-B/C of
//! the paper).
//!
//! The approximation algorithm casts UAV placement as maximizing a
//! monotone submodular coverage function subject to the intersection of
//! two matroids:
//!
//! * `M1` — a **partition matroid** over (UAV, location) pairs: each
//!   UAV occupies at most one location ([`PartitionMatroid`]);
//! * `M2` — a **hop-budget matroid** around the enumerated seed
//!   locations: at most `Q_h` chosen locations may be `≥ h` hops from
//!   the seeds, for every `h` (Eq. 1 of the paper). The sets
//!   `{v : d(v) ≥ h}` are nested, so these budgets define a matroid over
//!   a *chain* — implemented by [`NestedFamilyMatroid`].
//!
//! [`lazy_greedy`] implements the Fisher–Nemhauser–Wolsey greedy with
//! lazy (priority-queue) marginal evaluation, which achieves a
//! `1/(ρ+1)` approximation under `ρ` matroid constraints — `1/3` for
//! the paper's two matroids.
//!
//! # Examples
//!
//! ```
//! use uavnet_matroid::{Matroid, UniformMatroid};
//! let m = UniformMatroid::new(10, 3);
//! assert!(m.is_independent(&[0, 5, 9]));
//! assert!(!m.is_independent(&[0, 1, 2, 3]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod greedy;
mod matroid;
mod nested;
mod partition;

pub use greedy::{
    lazy_greedy, lazy_greedy_with, GreedyOptions, LazyGreedyWorkspace, MarginalOracle,
};
pub use matroid::{check_axioms_exhaustive, Matroid, UniformMatroid};
pub use nested::NestedFamilyMatroid;
pub use partition::PartitionMatroid;
