//! Lazy greedy for monotone submodular maximization under matroid-style
//! feasibility constraints.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A stateful marginal-gain oracle for a monotone submodular objective.
///
/// The greedy calls [`gain`](MarginalOracle::gain) to evaluate the
/// marginal value of adding an element to the current solution and
/// [`commit`](MarginalOracle::commit) when an element is chosen.
///
/// **Lazy-evaluation contract:** a gain computed earlier (against a
/// smaller solution, or an earlier iteration) must upper-bound the gain
/// of the same element now. Plain submodular functions satisfy this;
/// the paper's capacity-ordered variant does too because UAVs are
/// committed in non-increasing capacity order. The greedy
/// debug-asserts the contract.
pub trait MarginalOracle {
    /// Marginal gain of adding `e` to the current solution.
    fn gain(&mut self, e: usize) -> u64;

    /// Incorporates `e` into the solution.
    fn commit(&mut self, e: usize);

    /// Hook invoked when the greedy starts selecting its `k`-th element
    /// (0-based), before any gains for that pick are evaluated.
    fn begin_iteration(&mut self, _k: usize) {}

    /// Whether gains cached while selecting element `prev` remain valid
    /// upper bounds while selecting element `next` (`next = prev + 1`).
    ///
    /// Return `false` when the objective changes between picks in a
    /// way that may *increase* an element's gain — e.g. the paper's
    /// coverage oracle deploys a different radio class next, so a
    /// location's reachable-user set grows. The greedy then discards
    /// every cached bound and re-evaluates lazily from scratch.
    fn bounds_carry_over(&self, _prev: usize, _next: usize) -> bool {
        true
    }

    /// A cheap *admissible* upper bound on [`gain`](Self::gain) of `e`
    /// against the oracle's current state — e.g. `min(capacity,
    /// |coverable users|)` for the coverage oracle. The greedy seeds its
    /// heap with these instead of `u64::MAX`, so elements whose bound
    /// never reaches the top are never evaluated at all. Must satisfy
    /// `gain(e) <= gain_upper_bound(e)` whenever the bound is computed
    /// (at seeding and at every cache invalidation); the default is the
    /// trivial bound. The selected elements are identical for any
    /// admissible bound — tighter bounds only skip evaluations.
    fn gain_upper_bound(&self, _e: usize) -> u64 {
        u64::MAX
    }
}

/// Options for [`lazy_greedy`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Maximum number of elements to select.
    pub max_picks: usize,
    /// If `false`, stop as soon as the best available gain is zero; if
    /// `true`, keep selecting zero-gain feasible elements until
    /// `max_picks` (the paper's Algorithm 2 runs a fixed `L_max`
    /// iterations, so its feasible seed nodes are always included even
    /// when their marginal coverage is zero).
    pub allow_zero_gain: bool,
}

/// Reusable buffers for [`lazy_greedy_with`].
///
/// The greedy's upper-bound heap and chosen-set vector are the only
/// allocations a run needs; keeping them in a workspace lets a caller
/// that runs the greedy many times (e.g. once per seed subset of the
/// sweep) amortize them down to zero per-run allocations after warm-up.
#[derive(Debug, Default)]
pub struct LazyGreedyWorkspace {
    heap: BinaryHeap<(u64, Reverse<usize>, usize)>,
    // Scratch for re-seeding the heap when cached bounds are invalidated.
    stale: Vec<usize>,
    chosen: Vec<usize>,
}

impl LazyGreedyWorkspace {
    /// An empty workspace; buffers grow on first use and are then
    /// reused across runs.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fisher–Nemhauser–Wolsey greedy with lazy marginal evaluation.
///
/// Selects up to `options.max_picks` elements from `ground`, each time
/// adding a feasible element of maximum marginal gain. `feasible(set,
/// e)` must implement a *hereditary* constraint (e.g. the intersection
/// of matroids via [`Matroid::can_extend`]): once an element is
/// infeasible against the current set it must stay infeasible against
/// any superset — the greedy prunes on that assumption.
///
/// Under the intersection of `ρ` matroids this achieves the classic
/// `1/(ρ+1)` approximation for monotone submodular objectives.
///
/// Allocates a fresh workspace per call; use [`lazy_greedy_with`] to
/// reuse buffers across many runs.
///
/// [`Matroid::can_extend`]: crate::Matroid::can_extend
///
/// # Examples
///
/// ```
/// use uavnet_matroid::{lazy_greedy, GreedyOptions, MarginalOracle, Matroid, UniformMatroid};
///
/// // Weighted coverage: each element covers a set of items.
/// struct Cover {
///     sets: Vec<Vec<usize>>,
///     covered: Vec<bool>,
/// }
/// impl MarginalOracle for Cover {
///     fn gain(&mut self, e: usize) -> u64 {
///         self.sets[e].iter().filter(|&&i| !self.covered[i]).count() as u64
///     }
///     fn commit(&mut self, e: usize) {
///         for &i in &self.sets[e] {
///             self.covered[i] = true;
///         }
///     }
/// }
///
/// let mut oracle = Cover {
///     sets: vec![vec![0, 1, 2], vec![2, 3], vec![0, 1]],
///     covered: vec![false; 4],
/// };
/// let matroid = UniformMatroid::new(3, 2);
/// let picks = lazy_greedy(
///     &mut oracle,
///     &[0, 1, 2],
///     |set, e| matroid.can_extend(set, e),
///     GreedyOptions { max_picks: 2, allow_zero_gain: false },
/// );
/// assert_eq!(picks, vec![0, 1]); // covers all four items
/// ```
pub fn lazy_greedy<O, F>(
    oracle: &mut O,
    ground: &[usize],
    feasible: F,
    options: GreedyOptions,
) -> Vec<usize>
where
    O: MarginalOracle,
    F: FnMut(&[usize], usize) -> bool,
{
    let mut workspace = LazyGreedyWorkspace::new();
    lazy_greedy_with(&mut workspace, oracle, ground, feasible, options);
    workspace.chosen
}

/// [`lazy_greedy`] running inside a caller-owned [`LazyGreedyWorkspace`],
/// so repeated runs reuse the heap and chosen-set buffers instead of
/// reallocating them. Returns the chosen elements as a slice into the
/// workspace (valid until the next run).
pub fn lazy_greedy_with<'w, O, F>(
    workspace: &'w mut LazyGreedyWorkspace,
    oracle: &mut O,
    ground: &[usize],
    mut feasible: F,
    options: GreedyOptions,
) -> &'w [usize]
where
    O: MarginalOracle,
    F: FnMut(&[usize], usize) -> bool,
{
    // Heap entries: (cached gain, element, pick index when computed).
    // `Reverse` on the element makes ties deterministic (smallest id
    // first), matching the eager reference implementation in tests.
    const NEVER: usize = usize::MAX;
    let LazyGreedyWorkspace {
        heap,
        stale,
        chosen,
    } = workspace;
    heap.clear();
    heap.extend(
        ground
            .iter()
            .map(|&e| (oracle.gain_upper_bound(e), Reverse(e), NEVER)),
    );
    chosen.clear();

    for k in 0..options.max_picks {
        oracle.begin_iteration(k);
        if k > 0 && !oracle.bounds_carry_over(k - 1, k) {
            // Cached gains may now under-report; reset every entry to
            // a fresh admissible bound so each is recomputed before use.
            uavnet_obs::counters::GREEDY_BOUND_RESEEDS.add(1);
            stale.clear();
            stale.extend(heap.drain().map(|(_, Reverse(e), _)| e));
            heap.extend(
                stale
                    .iter()
                    .map(|&e| (oracle.gain_upper_bound(e), Reverse(e), NEVER)),
            );
        }
        let mut pick = None;
        while let Some((cached, Reverse(e), computed_at)) = heap.pop() {
            if chosen.contains(&e) {
                continue;
            }
            if !feasible(chosen, e) {
                // Hereditary constraints: infeasible now ⇒ infeasible
                // forever; drop the element.
                continue;
            }
            if computed_at == k {
                // CELF bound hit: the cached gain is still current, so
                // the element wins without another oracle evaluation.
                uavnet_obs::counters::GREEDY_BOUND_HITS.add(1);
                pick = Some((e, cached));
                break;
            }
            uavnet_obs::counters::GREEDY_EVALUATIONS.add(1);
            let gain_timer = uavnet_obs::hists::GAIN_QUERY.timer();
            let g = oracle.gain(e);
            drop(gain_timer);
            // Holds both for gains cached at an earlier pick (the lazy
            // contract) and for never-evaluated entries, whose `cached`
            // is the oracle's admissible upper bound.
            debug_assert!(
                g <= cached,
                "lazy contract violated for element {e}: {g} > cached {cached}"
            );
            heap.push((g, Reverse(e), k));
        }
        match pick {
            Some((_, 0)) if !options.allow_zero_gain => break,
            Some((e, _)) => {
                uavnet_obs::counters::GREEDY_COMMITS.add(1);
                chosen.push(e);
                oracle.commit(e);
            }
            None => break, // no feasible element left
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matroid, NestedFamilyMatroid, PartitionMatroid, UniformMatroid};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Unweighted set-cover oracle used across the tests.
    struct Cover {
        sets: Vec<Vec<usize>>,
        covered: Vec<bool>,
    }

    impl Cover {
        fn new(sets: Vec<Vec<usize>>, universe: usize) -> Self {
            Cover {
                sets,
                covered: vec![false; universe],
            }
        }
        fn covered_count(&self) -> usize {
            self.covered.iter().filter(|&&c| c).count()
        }
    }

    impl MarginalOracle for Cover {
        fn gain(&mut self, e: usize) -> u64 {
            self.sets[e].iter().filter(|&&i| !self.covered[i]).count() as u64
        }
        fn commit(&mut self, e: usize) {
            for &i in &self.sets[e] {
                self.covered[i] = true;
            }
        }
    }

    /// Eager reference greedy: recompute every gain each round, pick
    /// the max (ties: smallest element id).
    fn eager_greedy(
        sets: &[Vec<usize>],
        universe: usize,
        feasible: impl Fn(&[usize], usize) -> bool,
        max_picks: usize,
    ) -> Vec<usize> {
        let mut covered = vec![false; universe];
        let mut chosen: Vec<usize> = Vec::new();
        for _ in 0..max_picks {
            let mut best: Option<(u64, usize)> = None;
            for e in 0..sets.len() {
                if chosen.contains(&e) || !feasible(&chosen, e) {
                    continue;
                }
                let g = sets[e].iter().filter(|&&i| !covered[i]).count() as u64;
                let better = match best {
                    None => true,
                    Some((bg, be)) => g > bg || (g == bg && e < be),
                };
                if better {
                    best = Some((g, e));
                }
            }
            match best {
                Some((g, e)) if g > 0 => {
                    chosen.push(e);
                    for &i in &sets[e] {
                        covered[i] = true;
                    }
                }
                _ => break,
            }
        }
        chosen
    }

    #[test]
    fn picks_greedy_order() {
        let sets = vec![vec![0, 1], vec![0, 1, 2, 3], vec![4]];
        let mut oracle = Cover::new(sets, 5);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2],
            |_, _| true,
            GreedyOptions {
                max_picks: 2,
                allow_zero_gain: false,
            },
        );
        assert_eq!(picks, vec![1, 2]);
        assert_eq!(oracle.covered_count(), 5);
    }

    #[test]
    fn stops_at_zero_gain_when_disallowed() {
        let sets = vec![vec![0], vec![0], vec![0]];
        let mut oracle = Cover::new(sets, 1);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2],
            |_, _| true,
            GreedyOptions {
                max_picks: 3,
                allow_zero_gain: false,
            },
        );
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn continues_at_zero_gain_when_allowed() {
        let sets = vec![vec![0], vec![0], vec![0]];
        let mut oracle = Cover::new(sets, 1);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2],
            |_, _| true,
            GreedyOptions {
                max_picks: 3,
                allow_zero_gain: true,
            },
        );
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn respects_partition_matroid() {
        // Elements 0,1 are in part 0 (budget 1): only one may be taken.
        let sets = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]];
        let m = PartitionMatroid::new(vec![0, 0, 1], vec![1, 1]);
        let mut oracle = Cover::new(sets, 7);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2],
            |set, e| m.can_extend(set, e),
            GreedyOptions {
                max_picks: 3,
                allow_zero_gain: false,
            },
        );
        assert_eq!(picks.len(), 2);
        assert!(picks.contains(&2));
        assert!(!(picks.contains(&0) && picks.contains(&1)));
    }

    #[test]
    fn respects_two_matroid_intersection() {
        let sets = vec![vec![0], vec![1], vec![2], vec![3]];
        let part = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        let unif = UniformMatroid::new(4, 1);
        let mut oracle = Cover::new(sets, 4);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2, 3],
            |set, e| part.can_extend(set, e) && unif.can_extend(set, e),
            GreedyOptions {
                max_picks: 4,
                allow_zero_gain: false,
            },
        );
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn respects_nested_matroid_depth_budgets() {
        // Deep elements are more valuable but capped at one.
        let sets = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]];
        let m = NestedFamilyMatroid::new(vec![Some(1), Some(1), Some(0)], vec![3, 1]);
        let mut oracle = Cover::new(sets, 7);
        let picks = lazy_greedy(
            &mut oracle,
            &[0, 1, 2],
            |set, e| m.can_extend(set, e),
            GreedyOptions {
                max_picks: 3,
                allow_zero_gain: false,
            },
        );
        // Only one of {0, 1} (depth 1) plus element 2.
        assert_eq!(picks.len(), 2);
        assert!(picks.contains(&2));
    }

    #[test]
    fn matches_eager_greedy_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(2023);
        for round in 0..40 {
            let universe = rng.gen_range(1..30);
            let num_sets = rng.gen_range(1..12);
            let sets: Vec<Vec<usize>> = (0..num_sets)
                .map(|_| (0..universe).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let max_picks = rng.gen_range(1..=num_sets);
            // Random partition matroid over the sets.
            let parts: Vec<usize> = (0..num_sets).map(|_| rng.gen_range(0..3)).collect();
            let budgets = vec![rng.gen_range(1..3); 3];
            let m = PartitionMatroid::new(parts, budgets);

            let mut oracle = Cover::new(sets.clone(), universe);
            let ground: Vec<usize> = (0..num_sets).collect();
            let lazy = lazy_greedy(
                &mut oracle,
                &ground,
                |set, e| m.can_extend(set, e),
                GreedyOptions {
                    max_picks,
                    allow_zero_gain: false,
                },
            );
            let eager = eager_greedy(&sets, universe, |set, e| m.can_extend(set, e), max_picks);
            assert_eq!(lazy, eager, "round {round}");
        }
    }

    #[test]
    fn greedy_achieves_half_opt_under_one_matroid() {
        // 1/(ρ+1) = 1/2 guarantee under a single matroid: verify against
        // brute force on random small instances.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..30 {
            let universe = rng.gen_range(1..12);
            let num_sets = rng.gen_range(1..8);
            let sets: Vec<Vec<usize>> = (0..num_sets)
                .map(|_| (0..universe).filter(|_| rng.gen_bool(0.35)).collect())
                .collect();
            let rank = rng.gen_range(1..=num_sets);
            let m = UniformMatroid::new(num_sets, rank);

            let mut oracle = Cover::new(sets.clone(), universe);
            let ground: Vec<usize> = (0..num_sets).collect();
            let picks = lazy_greedy(
                &mut oracle,
                &ground,
                |set, e| m.can_extend(set, e),
                GreedyOptions {
                    max_picks: rank,
                    allow_zero_gain: false,
                },
            );
            let greedy_val = oracle.covered_count();

            // Brute-force optimum over all ≤rank subsets.
            let mut opt = 0;
            for mask in 0usize..1 << num_sets {
                if (mask.count_ones() as usize) > rank {
                    continue;
                }
                let mut cov = vec![false; universe];
                for e in 0..num_sets {
                    if mask >> e & 1 == 1 {
                        for &i in &sets[e] {
                            cov[i] = true;
                        }
                    }
                }
                opt = opt.max(cov.iter().filter(|&&c| c).count());
            }
            assert!(
                2 * greedy_val >= opt,
                "greedy {greedy_val} < OPT/2 (OPT={opt}); picks={picks:?}"
            );
        }
    }

    /// [`Cover`] plus a query counter and an optional admissible bound:
    /// `|set|` (a set can never newly cover more items than it
    /// contains), or the trivial `u64::MAX` when disabled.
    struct BoundedCover {
        inner: Cover,
        use_bound: bool,
        queries: u64,
    }

    impl MarginalOracle for BoundedCover {
        fn gain(&mut self, e: usize) -> u64 {
            self.queries += 1;
            self.inner.gain(e)
        }
        fn commit(&mut self, e: usize) {
            self.inner.commit(e);
        }
        fn gain_upper_bound(&self, e: usize) -> u64 {
            if self.use_bound {
                self.inner.sets[e].len() as u64
            } else {
                u64::MAX
            }
        }
    }

    #[test]
    fn admissible_bounds_pick_identically_with_fewer_queries() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut strictly_fewer = 0;
        for round in 0..40 {
            let universe = rng.gen_range(1..30);
            let num_sets = rng.gen_range(1..12);
            let sets: Vec<Vec<usize>> = (0..num_sets)
                .map(|_| (0..universe).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let max_picks = rng.gen_range(1..=num_sets);
            let ground: Vec<usize> = (0..num_sets).collect();
            let options = GreedyOptions {
                max_picks,
                allow_zero_gain: false,
            };

            let run = |use_bound: bool| {
                let mut oracle = BoundedCover {
                    inner: Cover::new(sets.clone(), universe),
                    use_bound,
                    queries: 0,
                };
                let picks = lazy_greedy(&mut oracle, &ground, |_, _| true, options);
                (picks, oracle.queries)
            };
            let (unbounded_picks, unbounded_queries) = run(false);
            let (bounded_picks, bounded_queries) = run(true);
            assert_eq!(bounded_picks, unbounded_picks, "round {round}");
            // An admissible bound only ever *skips* evaluations.
            assert!(
                bounded_queries <= unbounded_queries,
                "round {round}: {bounded_queries} > {unbounded_queries}"
            );
            if bounded_queries < unbounded_queries {
                strictly_fewer += 1;
            }
        }
        assert!(strictly_fewer > 0, "bounds never pruned a single query");
    }

    #[test]
    fn empty_ground_set() {
        let mut oracle = Cover::new(vec![], 0);
        let picks = lazy_greedy(
            &mut oracle,
            &[],
            |_, _| true,
            GreedyOptions {
                max_picks: 5,
                allow_zero_gain: true,
            },
        );
        assert!(picks.is_empty());
    }

    #[test]
    fn max_picks_zero() {
        let mut oracle = Cover::new(vec![vec![0]], 1);
        let picks = lazy_greedy(
            &mut oracle,
            &[0],
            |_, _| true,
            GreedyOptions {
                max_picks: 0,
                allow_zero_gain: true,
            },
        );
        assert!(picks.is_empty());
    }
}
