//! Partition matroids.

use crate::Matroid;

/// A partition matroid: the ground set is partitioned into parts, and
/// an independent set may contain at most `budget[p]` elements of part
/// `p`.
///
/// The paper's `M1` (§III-B) is the special case where the ground set
/// is the Cartesian product `UAVs × locations`, parts group the pairs
/// of one UAV, and every budget is 1: "each UAV is placed at no more
/// than one location".
///
/// # Examples
///
/// ```
/// use uavnet_matroid::{Matroid, PartitionMatroid};
/// // Elements 0,1 in part 0; elements 2,3 in part 1; budget 1 each.
/// let m = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
/// assert!(m.is_independent(&[0, 2]));
/// assert!(!m.is_independent(&[0, 1]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMatroid {
    part_of: Vec<usize>,
    budget: Vec<usize>,
}

impl PartitionMatroid {
    /// Creates a partition matroid where element `e` belongs to part
    /// `part_of[e]` and part `p` may contribute at most `budget[p]`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if some `part_of[e]` is out of range of `budget`.
    pub fn new(part_of: Vec<usize>, budget: Vec<usize>) -> Self {
        for (e, &p) in part_of.iter().enumerate() {
            assert!(
                p < budget.len(),
                "element {e} assigned to unknown part {p} (have {})",
                budget.len()
            );
        }
        PartitionMatroid { part_of, budget }
    }

    /// The `M1` of the paper: `k` UAVs × `m` locations, element
    /// `u·m + l` = "UAV `u` at location `l`", each UAV used at most
    /// once.
    pub fn one_location_per_uav(num_uavs: usize, num_locations: usize) -> Self {
        let part_of = (0..num_uavs * num_locations)
            .map(|e| e / num_locations)
            .collect();
        PartitionMatroid::new(part_of, vec![1; num_uavs])
    }

    /// The part of an element.
    pub fn part_of(&self, e: usize) -> usize {
        self.part_of[e]
    }

    /// Budget of a part.
    pub fn budget(&self, p: usize) -> usize {
        self.budget[p]
    }
}

impl Matroid for PartitionMatroid {
    fn ground_size(&self) -> usize {
        self.part_of.len()
    }

    fn is_independent(&self, set: &[usize]) -> bool {
        let mut used = vec![0usize; self.budget.len()];
        for &e in set {
            if e >= self.part_of.len() {
                return false;
            }
            let p = self.part_of[e];
            used[p] += 1;
            if used[p] > self.budget[p] {
                return false;
            }
        }
        true
    }

    fn can_extend(&self, set: &[usize], e: usize) -> bool {
        if e >= self.part_of.len() {
            return false;
        }
        let p = self.part_of[e];
        let used = set.iter().filter(|&&x| self.part_of[x] == p).count();
        used < self.budget[p]
    }

    fn rank_bound(&self) -> usize {
        self.budget.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matroid::check_axioms_exhaustive;

    #[test]
    fn axioms_hold_on_small_partitions() {
        let m = PartitionMatroid::new(vec![0, 0, 1, 1, 2], vec![1, 2, 1]);
        check_axioms_exhaustive(&m).unwrap();
        let m = PartitionMatroid::new(vec![0; 6], vec![3]);
        check_axioms_exhaustive(&m).unwrap();
        let m = PartitionMatroid::new(vec![0, 1, 2, 0, 1, 2], vec![0, 1, 2]);
        check_axioms_exhaustive(&m).unwrap();
    }

    #[test]
    fn budgets_enforced_per_part() {
        let m = PartitionMatroid::new(vec![0, 0, 0, 1], vec![2, 1]);
        assert!(m.is_independent(&[0, 1, 3]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert!(m.can_extend(&[0], 1));
        assert!(!m.can_extend(&[0, 1], 2));
    }

    #[test]
    fn zero_budget_part_is_forbidden() {
        let m = PartitionMatroid::new(vec![0, 1], vec![0, 1]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
        assert!(!m.can_extend(&[], 0));
    }

    #[test]
    fn uav_location_construction_matches_m1() {
        // 2 UAVs × 3 locations: element u*3 + l.
        let m = PartitionMatroid::one_location_per_uav(2, 3);
        assert_eq!(m.ground_size(), 6);
        // UAV 0 at location 0 and UAV 1 at location 2: independent.
        assert!(m.is_independent(&[0, 5]));
        // UAV 0 at two locations: dependent (the paper's A2 example).
        assert!(!m.is_independent(&[0, 1]));
        assert_eq!(m.rank_bound(), 2);
        check_axioms_exhaustive(&m).unwrap();
    }

    #[test]
    fn out_of_range_elements_rejected() {
        let m = PartitionMatroid::new(vec![0], vec![1]);
        assert!(!m.is_independent(&[1]));
        assert!(!m.can_extend(&[], 1));
    }

    #[test]
    #[should_panic(expected = "unknown part")]
    fn constructor_rejects_bad_parts() {
        let _ = PartitionMatroid::new(vec![0, 2], vec![1, 1]);
    }
}
