//! The nested-family (chain) matroid implementing the paper's `M2`.

use crate::Matroid;

/// A matroid defined by budgets over a *nested* family of sets
/// `S_0 ⊇ S_1 ⊇ … ⊇ S_h`: a set `X` is independent iff
/// `|X ∩ S_j| ≤ Q_j` for every level `j`, and every element of `X`
/// belongs to `S_0`.
///
/// Each element is described by its **depth** — the largest `j` with
/// `e ∈ S_j` (`None` = not even in `S_0`, never independent).
///
/// This realizes the paper's `M2` (§III-C): element depth = hop
/// distance `d_l` from the seed set `{v*_1 … v*_s}` (capped at
/// `h_max`; locations farther than `h_max` hops, or unreachable, get
/// `None`), and `Q_h` counts how many chosen locations may be at least
/// `h` hops away (Eq. 1).
///
/// Budgets over a chain of nested sets always yield a matroid (a
/// laminar matroid with a chain as its laminar family); the test-suite
/// re-verifies the axioms exhaustively.
///
/// # Examples
///
/// ```
/// use uavnet_matroid::{Matroid, NestedFamilyMatroid};
/// // Three elements at depths 0, 1, 1; budgets Q = [2, 1]:
/// // at most 2 elements total, at most 1 at depth ≥ 1.
/// let m = NestedFamilyMatroid::new(vec![Some(0), Some(1), Some(1)], vec![2, 1]);
/// assert!(m.is_independent(&[0, 1]));
/// assert!(!m.is_independent(&[1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedFamilyMatroid {
    depth: Vec<Option<usize>>,
    budgets: Vec<usize>,
}

impl NestedFamilyMatroid {
    /// Creates the matroid from per-element depths and per-level
    /// budgets `Q_0 … Q_{h_max}`.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty, or some element's depth is
    /// `≥ budgets.len()` (it would sit below every budgeted level —
    /// pass `None` to exclude it instead).
    pub fn new(depth: Vec<Option<usize>>, budgets: Vec<usize>) -> Self {
        assert!(!budgets.is_empty(), "need at least the Q_0 budget");
        for (e, d) in depth.iter().enumerate() {
            if let Some(d) = d {
                assert!(
                    *d < budgets.len(),
                    "element {e} has depth {d} >= {} levels",
                    budgets.len()
                );
            }
        }
        NestedFamilyMatroid { depth, budgets }
    }

    /// Depth of an element (`None` = excluded from the ground set's
    /// independent sets).
    pub fn depth_of(&self, e: usize) -> Option<usize> {
        self.depth[e]
    }

    /// The budget `Q_j` at level `j`.
    pub fn budget_at(&self, j: usize) -> usize {
        self.budgets[j]
    }

    /// Number of levels (`h_max + 1`).
    pub fn num_levels(&self) -> usize {
        self.budgets.len()
    }

    /// Suffix count `|X ∩ S_j|` = number of elements of `set` at depth
    /// ≥ `j`, or `None` if some element is out of range or has no
    /// depth. `O(|set|)` and allocation-free: both checks below run
    /// once per greedy heap pop, so a heap-allocated histogram here
    /// would put an allocator round-trip in the sweep's hot loop.
    fn count_at_least(&self, set: &[usize], j: usize) -> Option<usize> {
        let mut count = 0;
        for &e in set {
            match self.depth.get(e)? {
                Some(d) if *d >= j => count += 1,
                Some(_) => {}
                None => return None,
            }
        }
        Some(count)
    }
}

impl Matroid for NestedFamilyMatroid {
    fn ground_size(&self) -> usize {
        self.depth.len()
    }

    fn is_independent(&self, set: &[usize]) -> bool {
        (0..self.budgets.len()).rev().all(|j| {
            self.count_at_least(set, j)
                .is_some_and(|c| c <= self.budgets[j])
        })
    }

    fn can_extend(&self, set: &[usize], e: usize) -> bool {
        let Some(Some(de)) = self.depth.get(e).copied() else {
            return false;
        };
        for j in (0..self.budgets.len()).rev() {
            let Some(at_least) = self.count_at_least(set, j) else {
                return false;
            };
            // Adding e increments every suffix count with j ≤ de.
            let after = if j <= de { at_least + 1 } else { at_least };
            if after > self.budgets[j] {
                return false;
            }
        }
        true
    }

    fn rank_bound(&self) -> usize {
        self.budgets[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matroid::check_axioms_exhaustive;

    #[test]
    fn axioms_hold_on_small_instances() {
        let m = NestedFamilyMatroid::new(
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), None],
            vec![4, 2, 1],
        );
        check_axioms_exhaustive(&m).unwrap();

        // All depth 0, single budget — degenerates to a uniform matroid.
        let m = NestedFamilyMatroid::new(vec![Some(0); 5], vec![3]);
        check_axioms_exhaustive(&m).unwrap();

        // Tight budgets.
        let m = NestedFamilyMatroid::new(vec![Some(0), Some(1), Some(2), Some(2)], vec![2, 2, 0]);
        check_axioms_exhaustive(&m).unwrap();
    }

    #[test]
    fn paper_fig2d_budgets() {
        // The example of §III-C: L = 10, s = 3, p = (1, 2, 2, 2) gives
        // Q_0 = 10, Q_1 = 7, Q_2 = 1 and h_max = 2.
        // Model ten elements: three seeds at depth 0, six at depth 1,
        // one at depth 2 — matching Fig. 2(d).
        let mut depth = vec![Some(0); 3];
        depth.extend(vec![Some(1); 6]);
        depth.push(Some(2));
        let m = NestedFamilyMatroid::new(depth, vec![10, 7, 1]);
        // The whole subpath is independent (it defines the budgets).
        let all: Vec<usize> = (0..10).collect();
        assert!(m.is_independent(&all));
        assert_eq!(m.rank_bound(), 10);
    }

    #[test]
    fn excluded_elements_never_independent() {
        let m = NestedFamilyMatroid::new(vec![Some(0), None], vec![5]);
        assert!(m.is_independent(&[0]));
        assert!(!m.is_independent(&[1]));
        assert!(!m.can_extend(&[], 1));
        assert!(!m.can_extend(&[0], 1));
    }

    #[test]
    fn suffix_budgets_bind() {
        // Q = [3, 1]: at most one deep element, three total.
        let m = NestedFamilyMatroid::new(vec![Some(0), Some(0), Some(1), Some(1)], vec![3, 1]);
        assert!(m.is_independent(&[0, 1, 2]));
        assert!(!m.is_independent(&[2, 3]));
        assert!(m.can_extend(&[0, 1], 2));
        assert!(!m.can_extend(&[2], 3));
        assert!(!m.can_extend(&[0, 1, 2], 3));
    }

    #[test]
    fn can_extend_agrees_with_is_independent() {
        let m = NestedFamilyMatroid::new(
            vec![Some(0), Some(1), Some(1), Some(2), None],
            vec![3, 2, 1],
        );
        // Compare on every independent set and every extension.
        let n = m.ground_size();
        for mask in 0usize..1 << n {
            let set: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            if !m.is_independent(&set) {
                continue;
            }
            for e in 0..n {
                if set.contains(&e) {
                    continue;
                }
                let mut with = set.clone();
                with.push(e);
                assert_eq!(
                    m.can_extend(&set, e),
                    m.is_independent(&with),
                    "set {set:?} + {e}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_is_dependent() {
        let m = NestedFamilyMatroid::new(vec![Some(0)], vec![1]);
        assert!(!m.is_independent(&[5]));
        assert!(!m.can_extend(&[], 5));
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_depth_beyond_levels() {
        let _ = NestedFamilyMatroid::new(vec![Some(3)], vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "Q_0")]
    fn rejects_empty_budgets() {
        let _ = NestedFamilyMatroid::new(vec![Some(0)], vec![]);
    }
}
