//! The matroid trait and the uniform matroid.

/// A matroid `(N, I)` over the ground set `{0, …, ground_size() − 1}`.
///
/// Implementors must satisfy the three matroid axioms of §II-E:
/// `∅ ∈ I`; independence is hereditary; and the augmentation
/// (exchange) property holds. The test-suites verify the axioms
/// exhaustively on small instances of every implementor in this crate.
pub trait Matroid {
    /// Size of the ground set `N`.
    fn ground_size(&self) -> usize;

    /// Whether `set` (distinct elements, any order) is independent.
    ///
    /// # Panics
    ///
    /// May panic if an element is out of range.
    fn is_independent(&self, set: &[usize]) -> bool;

    /// Whether an *independent* `set` stays independent after adding
    /// `e ∉ set`. The default clones; implementors usually override
    /// with an O(|set|) check.
    fn can_extend(&self, set: &[usize], e: usize) -> bool {
        debug_assert!(!set.contains(&e), "element {e} already in set");
        let mut with = Vec::with_capacity(set.len() + 1);
        with.extend_from_slice(set);
        with.push(e);
        self.is_independent(&with)
    }

    /// The rank upper bound: no independent set can exceed this size.
    /// Defaults to the ground size.
    fn rank_bound(&self) -> usize {
        self.ground_size()
    }
}

/// The uniform matroid `U_{n,r}`: any set of at most `r` elements is
/// independent.
///
/// # Examples
///
/// ```
/// use uavnet_matroid::{Matroid, UniformMatroid};
/// let m = UniformMatroid::new(5, 2);
/// assert!(m.is_independent(&[]));
/// assert!(m.is_independent(&[3, 4]));
/// assert!(!m.is_independent(&[0, 1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformMatroid {
    ground: usize,
    rank: usize,
}

impl UniformMatroid {
    /// Creates `U_{ground, rank}`.
    pub fn new(ground: usize, rank: usize) -> Self {
        UniformMatroid { ground, rank }
    }

    /// The rank `r`.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Matroid for UniformMatroid {
    fn ground_size(&self) -> usize {
        self.ground
    }

    fn is_independent(&self, set: &[usize]) -> bool {
        set.iter().all(|&e| e < self.ground) && set.len() <= self.rank
    }

    fn can_extend(&self, set: &[usize], e: usize) -> bool {
        e < self.ground && set.len() < self.rank
    }

    fn rank_bound(&self) -> usize {
        self.rank
    }
}

/// Exhaustively checks the three matroid axioms on every subset of the
/// ground set. Exponential — for tests on small matroids only.
///
/// Returns `Err` with a description of the first violated axiom.
pub fn check_axioms_exhaustive<M: Matroid>(m: &M) -> Result<(), String> {
    let n = m.ground_size();
    assert!(n <= 10, "exhaustive axiom check limited to 10 elements");
    let subsets = 1usize << n;
    let members = |mask: usize| -> Vec<usize> { (0..n).filter(|i| mask >> i & 1 == 1).collect() };
    let indep: Vec<bool> = (0..subsets)
        .map(|mask| m.is_independent(&members(mask)))
        .collect();
    if !indep[0] {
        return Err("empty set is not independent".into());
    }
    for mask in 0..subsets {
        if !indep[mask] {
            continue;
        }
        // Hereditary: all subsets of an independent set are independent.
        let mut sub = mask;
        loop {
            if !indep[sub] {
                return Err(format!("hereditary violated: {sub:b} ⊆ {mask:b}"));
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & mask;
        }
    }
    for a in 0..subsets {
        if !indep[a] {
            continue;
        }
        for b in 0..subsets {
            if !indep[b] || members(a).len() <= members(b).len() {
                continue;
            }
            // Augmentation: some element of A \ B extends B.
            let extendable =
                (0..n).any(|e| a >> e & 1 == 1 && b >> e & 1 == 0 && indep[b | (1 << e)]);
            if !extendable {
                return Err(format!("augmentation violated: A={a:b}, B={b:b}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axioms_hold() {
        for n in 0..6 {
            for r in 0..=n {
                check_axioms_exhaustive(&UniformMatroid::new(n, r)).unwrap();
            }
        }
    }

    #[test]
    fn uniform_rank_bound() {
        let m = UniformMatroid::new(9, 4);
        assert_eq!(m.rank_bound(), 4);
        assert_eq!(m.ground_size(), 9);
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn uniform_rejects_out_of_range() {
        let m = UniformMatroid::new(3, 3);
        assert!(!m.is_independent(&[0, 3]));
        assert!(!m.can_extend(&[0], 3));
    }

    #[test]
    fn default_can_extend_agrees() {
        struct ViaDefault(UniformMatroid);
        impl Matroid for ViaDefault {
            fn ground_size(&self) -> usize {
                self.0.ground_size()
            }
            fn is_independent(&self, set: &[usize]) -> bool {
                self.0.is_independent(set)
            }
        }
        let d = ViaDefault(UniformMatroid::new(5, 2));
        let u = UniformMatroid::new(5, 2);
        assert_eq!(d.can_extend(&[1], 2), u.can_extend(&[1], 2));
        assert_eq!(d.can_extend(&[1, 3], 2), u.can_extend(&[1, 3], 2));
    }

    #[test]
    fn axiom_checker_catches_violation() {
        // A fake "matroid" where {0,1} is independent but {1} is not —
        // violates hereditary.
        struct Broken;
        impl Matroid for Broken {
            fn ground_size(&self) -> usize {
                2
            }
            fn is_independent(&self, set: &[usize]) -> bool {
                set != [1]
            }
        }
        let err = check_axioms_exhaustive(&Broken).unwrap_err();
        assert!(err.contains("hereditary"));
    }
}
