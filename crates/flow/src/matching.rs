//! Incremental capacitated bipartite matching with trial insertions.
//!
//! Specializes the assignment flow network of §II-D: *users* have unit
//! capacity, *stations* (deployed UAVs) have capacity `C_k`. Stations
//! are added one at a time and saturated by augmenting paths (Kuhn's
//! algorithm generalized to capacitated right-vertices), which keeps the
//! matching maximum after every insertion. A station can also be
//! *evaluated*: inserted, saturated, its gain recorded, and every change
//! rolled back — the primitive behind the greedy marginal-gain oracle
//! `n_{k,l} − n_{k−1}` in Algorithm 2.
//!
//! The structure is allocation-free on the query path: station
//! adjacency lives in two flattened arenas (plain ids, or the words of
//! a 64-aligned bitset list copied verbatim at commit time), the BFS
//! queue and the rollback log are persistent scratch buffers that are
//! reused (never freed) across searches, and [`evaluate_station`]
//! (CapacitatedMatching::evaluate_station) borrows the candidate user
//! list instead of copying it into a temporary station. A free-user
//! bitset mirrors the assignment so pre-passes intersect bitset lists
//! word-by-word instead of probing users one at a time. After warm-up,
//! repeated gain queries and commits perform no heap allocation, which
//! is what makes the subset-sweep oracle loop cheap enough to run
//! millions of times.

use crate::users::UserList;

/// Identifier of a station returned by
/// [`CapacitatedMatching::add_station`].
pub type StationId = usize;

/// An all-ones free-user bitset for `num_users` users, with the bits
/// past the last user masked off so word-wise intersections never
/// fabricate a phantom free user.
fn all_free_words(num_users: usize) -> Vec<u64> {
    let mut words = vec![!0u64; num_users.div_ceil(64)];
    let tail = num_users % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last = (1u64 << tail) - 1;
        }
    }
    words
}

/// Where one committed station's adjacency lives: a span of the id
/// arena, or — for 64-aligned bitset lists — a span of the word arena
/// (committing is then a word memcpy and the saturation pre-pass
/// intersects directly with the free-user bitset).
#[derive(Debug, Clone, Copy)]
enum StationAdj {
    Ids { start: usize, len: usize },
    Words { start: usize, len: usize, base: u32 },
}

/// A maximum capacitated matching maintained incrementally.
///
/// # Examples
///
/// ```
/// use uavnet_flow::CapacitatedMatching;
///
/// let mut m = CapacitatedMatching::new(4);
/// // A station with capacity 2 covering users 0, 1, 2.
/// let s0 = m.add_station(2, &[0, 1, 2]);
/// assert_eq!(m.saturate(s0), 2);
/// // A second station covering users 2, 3 picks up the rest.
/// let s1 = m.add_station(2, &[2, 3]);
/// assert_eq!(m.saturate(s1), 2);
/// assert_eq!(m.matched_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CapacitatedMatching {
    user_station: Vec<Option<StationId>>,
    // Mirror of `user_station`: bit u set ⇔ user u unmatched. Lets the
    // pre-passes intersect 64-aligned bitset coverage lists one word
    // at a time, skipping matched users wholesale.
    free: Vec<u64>,
    station_cap: Vec<u32>,
    station_load: Vec<u32>,
    // Station adjacency: per-station span into one of two shared
    // arenas, kept in whichever representation the caller's list
    // already had (ids stay ids, aligned bitsets stay words).
    station_adj: Vec<StationAdj>,
    adj: Vec<u32>,
    adj_words: Vec<u64>,
    matched: usize,
    // BFS scratch, one slot per station plus one for the trial station
    // (stamped visited marks avoid clearing between searches).
    visit_mark: Vec<u64>,
    epoch: u64,
    parent_station: Vec<usize>,
    parent_user: Vec<u32>,
    // Persistent scratch: BFS queue (head index instead of pop_front)
    // and the `(user, previous station)` log a trial insertion unwinds.
    queue: Vec<usize>,
    rollback: Vec<(u32, Option<StationId>)>,
}

impl CapacitatedMatching {
    /// Creates an empty matching over `num_users` users.
    pub fn new(num_users: usize) -> Self {
        CapacitatedMatching {
            user_station: vec![None; num_users],
            free: all_free_words(num_users),
            station_cap: Vec::new(),
            station_load: Vec::new(),
            station_adj: Vec::new(),
            adj: Vec::new(),
            adj_words: Vec::new(),
            matched: 0,
            // One scratch slot exists beyond the last real station so a
            // trial station (id == num_stations) can use it.
            visit_mark: vec![0],
            epoch: 0,
            parent_station: vec![usize::MAX],
            parent_user: vec![u32::MAX],
            queue: Vec::new(),
            rollback: Vec::new(),
        }
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_station.len()
    }

    /// Number of stations added so far.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.station_cap.len()
    }

    /// Total number of matched (served) users.
    #[inline]
    pub fn matched_count(&self) -> usize {
        self.matched
    }

    /// The station serving each user (`None` = unserved).
    #[inline]
    pub fn assignment(&self) -> &[Option<StationId>] {
        &self.user_station
    }

    /// Load (users currently served) of a station.
    ///
    /// # Panics
    ///
    /// Panics if `st` is out of range.
    #[inline]
    pub fn station_load(&self, st: StationId) -> u32 {
        self.station_load[st]
    }

    /// Capacity of a station.
    ///
    /// # Panics
    ///
    /// Panics if `st` is out of range.
    #[inline]
    pub fn station_cap(&self, st: StationId) -> u32 {
        self.station_cap[st]
    }

    /// Clears all stations and assignments while keeping every buffer's
    /// capacity, so a reused instance performs no fresh allocations.
    /// The user count is unchanged.
    pub fn reset(&mut self) {
        self.user_station.fill(None);
        let tail = self.user_station.len() % 64;
        self.free.fill(!0);
        if tail != 0 {
            if let Some(last) = self.free.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        self.station_cap.clear();
        self.station_load.clear();
        self.station_adj.clear();
        self.adj.clear();
        self.adj_words.clear();
        self.matched = 0;
        self.visit_mark.truncate(1);
        self.parent_station.truncate(1);
        self.parent_user.truncate(1);
        // `epoch` keeps counting up: stale marks in the retained slot
        // can never collide with a future epoch.
        self.queue.clear();
        self.rollback.clear();
    }

    /// Adds a station with capacity `cap` able to cover `users`, without
    /// matching anyone yet; call [`saturate`](Self::saturate) to let it
    /// take load. The user list is copied into the internal CSR arena
    /// (one amortized `extend`, no per-station `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if any user id is out of range.
    pub fn add_station(&mut self, cap: u32, users: &[u32]) -> StationId {
        self.add_station_list(cap, UserList::Ids(users))
    }

    /// [`add_station`](Self::add_station) over any [`UserList`]
    /// encoding: id slices and 64-aligned bitset windows are copied
    /// into their arena verbatim (one `extend_from_slice` each — no
    /// per-user decode); runs and unaligned bitsets are decoded.
    ///
    /// # Panics
    ///
    /// Panics if any user id is out of range.
    pub fn add_station_list(&mut self, cap: u32, users: UserList<'_>) -> StationId {
        let n = self.num_users();
        if let Some(max) = users.max_id() {
            assert!((max as usize) < n, "user {max} out of range for {n} users");
        }
        self.station_cap.push(cap);
        self.station_load.push(0);
        match users {
            UserList::Ids(ids) => {
                self.station_adj.push(StationAdj::Ids {
                    start: self.adj.len(),
                    len: ids.len(),
                });
                self.adj.extend_from_slice(ids);
            }
            UserList::Bits { base, words } if base % 64 == 0 => {
                self.station_adj.push(StationAdj::Words {
                    start: self.adj_words.len(),
                    len: words.len(),
                    base,
                });
                self.adj_words.extend_from_slice(words);
            }
            other => {
                let start = self.adj.len();
                other.for_each_while(|u| {
                    self.adj.push(u);
                    true
                });
                self.station_adj.push(StationAdj::Ids {
                    start,
                    len: self.adj.len() - start,
                });
            }
        }
        self.visit_mark.push(0);
        self.parent_station.push(usize::MAX);
        self.parent_user.push(u32::MAX);
        self.station_cap.len() - 1
    }

    /// One augmenting-path BFS from `st`, applying the augmentation if
    /// one is found. With `trial = Some(users)`, `st` is the phantom
    /// station `num_stations` whose adjacency is the borrowed `users`
    /// list; its capacity is enforced by the caller and its load is
    /// never stored. With `record`, every user reassignment is pushed
    /// onto the persistent rollback log for the caller to unwind.
    fn augment_once(&mut self, st: usize, trial: Option<UserList<'_>>, record: bool) -> bool {
        uavnet_obs::counters::MATCHING_BFS_RESTARTS.add(1);
        let _bfs_timer = uavnet_obs::hists::BFS_RESTART.timer();
        self.epoch += 1;
        let epoch = self.epoch;
        let trial_id = self.station_cap.len();
        self.visit_mark[st] = epoch;
        self.queue.clear();
        self.queue.push(st);
        let mut head = 0;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            if x == trial_id {
                // The trial list borrows caller data, so iterating it
                // while mutating `self` needs no indexed re-borrows.
                let t = trial.expect("trial station visited outside a trial search");
                let mut augmented = false;
                t.for_each_while(|u| {
                    augmented = self.relax_user(u, x, st, trial_id, epoch, record);
                    !augmented
                });
                if augmented {
                    return true;
                }
            } else {
                match self.station_adj[x] {
                    StationAdj::Ids { start, len } => {
                        for idx in start..start + len {
                            let u = self.adj[idx];
                            if self.relax_user(u, x, st, trial_id, epoch, record) {
                                return true;
                            }
                        }
                    }
                    StationAdj::Words { start, len, base } => {
                        // A station one restart visits will be rescanned
                        // by many more: decode once into the ids arena
                        // and flip, so every later walk is a slice scan.
                        // (Representation-only — never rolled back.)
                        let ids_start = self.adj.len();
                        for wi in 0..len {
                            let mut bits = self.adj_words[start + wi];
                            while bits != 0 {
                                let u = base + wi as u32 * 64 + bits.trailing_zeros();
                                bits &= bits - 1;
                                self.adj.push(u);
                            }
                        }
                        let ids_len = self.adj.len() - ids_start;
                        self.station_adj[x] = StationAdj::Ids {
                            start: ids_start,
                            len: ids_len,
                        };
                        for idx in ids_start..ids_start + ids_len {
                            let u = self.adj[idx];
                            if self.relax_user(u, x, st, trial_id, epoch, record) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// BFS step on one `station x → user u` edge. Applies and returns
    /// `true` when `u` is free (augmenting path found, reassignment
    /// walked back along the parent chain to `st`); otherwise enqueues
    /// `u`'s current station if unvisited this epoch.
    ///
    /// `inline(always)`: this is the per-element body of every BFS
    /// adjacency walk — an outlined call here costs double-digit
    /// percents on the large sweeps.
    #[inline(always)]
    fn relax_user(
        &mut self,
        u: u32,
        x: usize,
        st: usize,
        trial_id: usize,
        epoch: u64,
        record: bool,
    ) -> bool {
        match self.user_station[u as usize] {
            None => {
                // Only the entry user of the chain was free; everyone
                // else merely changes station.
                self.free[(u / 64) as usize] &= !(1u64 << (u % 64));
                let mut user = u;
                let mut station = x;
                loop {
                    let old = self.user_station[user as usize];
                    if record {
                        self.rollback.push((user, old));
                    }
                    self.user_station[user as usize] = Some(station);
                    if station == st {
                        break;
                    }
                    let pu = self.parent_user[station];
                    let ps = self.parent_station[station];
                    user = pu;
                    station = ps;
                }
                if st != trial_id {
                    self.station_load[st] += 1;
                }
                self.matched += 1;
                true
            }
            Some(y) => {
                if self.visit_mark[y] != epoch {
                    self.visit_mark[y] = epoch;
                    self.parent_station[y] = x;
                    self.parent_user[y] = u;
                    self.queue.push(y);
                }
                false
            }
        }
    }

    /// Augments from `st` until its capacity is full or no augmenting
    /// path remains. Returns the number of newly matched users.
    ///
    /// Adding stations one at a time and saturating each keeps the
    /// matching maximum over all stations added so far (Kuhn's
    /// incremental argument).
    ///
    /// # Panics
    ///
    /// Panics if `st` is out of range.
    pub fn saturate(&mut self, st: StationId) -> u32 {
        assert!(st < self.num_stations(), "station {st} out of range");
        let mut gained = 0;
        // Pre-pass: claim unmatched covered users in adjacency order.
        // A restart-BFS would do exactly this anyway — its level-1 scan
        // returns the earliest free adjacent user before any
        // displacement path is explored — so the final assignment is
        // bit-for-bit the same, minus one BFS restart per claimed user.
        match self.station_adj[st] {
            StationAdj::Ids { start, len } => {
                for idx in start..start + len {
                    if self.station_load[st] >= self.station_cap[st] {
                        break;
                    }
                    let u = self.adj[idx] as usize;
                    if self.user_station[u].is_none() {
                        self.user_station[u] = Some(st);
                        self.free[u / 64] &= !(1u64 << (u % 64));
                        self.station_load[st] += 1;
                        self.matched += 1;
                        gained += 1;
                        uavnet_obs::counters::MATCHING_PREPASS_HITS.add(1);
                    }
                }
            }
            // Word stations intersect with the free bitset: every
            // surviving bit is a free covered user, claimed without a
            // per-user assignment lookup. The claim order (ascending)
            // matches the decoded adjacency order exactly.
            StationAdj::Words { start, len, base } => {
                let w0 = (base / 64) as usize;
                'words: for wi in 0..len {
                    let mut bits = self.adj_words[start + wi] & self.free[w0 + wi];
                    while bits != 0 {
                        if self.station_load[st] >= self.station_cap[st] {
                            break 'words;
                        }
                        let u = base + wi as u32 * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        self.user_station[u as usize] = Some(st);
                        self.free[w0 + wi] &= !(1u64 << (u % 64));
                        self.station_load[st] += 1;
                        self.matched += 1;
                        gained += 1;
                        uavnet_obs::counters::MATCHING_PREPASS_HITS.add(1);
                    }
                }
            }
        }
        while self.station_load[st] < self.station_cap[st] && self.augment_once(st, None, false) {
            gained += 1;
        }
        #[cfg(feature = "debug-validate")]
        self.assert_consistent();
        gained
    }

    /// Full-state audit: every user's assignment is mirrored in its
    /// station's load, no station exceeds its capacity and the matched
    /// tally agrees. Compiled only under `debug-validate`.
    #[cfg(feature = "debug-validate")]
    fn assert_consistent(&self) {
        let mut loads = vec![0u32; self.num_stations()];
        let mut matched = 0usize;
        for &st in self.user_station.iter().flatten() {
            loads[st] += 1;
            matched += 1;
        }
        assert_eq!(
            matched, self.matched,
            "debug-validate: matched count drifted"
        );
        for st in 0..self.num_stations() {
            assert_eq!(
                loads[st], self.station_load[st],
                "debug-validate: station {st} load drifted"
            );
            assert!(
                loads[st] <= self.station_cap[st],
                "debug-validate: station {st} over capacity"
            );
        }
        for (u, st) in self.user_station.iter().enumerate() {
            let bit = self.free[u / 64] >> (u % 64) & 1 == 1;
            assert_eq!(
                bit,
                st.is_none(),
                "debug-validate: free bit drifted for user {u}"
            );
        }
    }

    /// Trial insertion: how many extra users would a station with
    /// capacity `cap` covering `users` serve, on top of the current
    /// matching? The matching is left exactly as it was.
    ///
    /// The candidate list is only borrowed: the search runs against a
    /// phantom station whose adjacency is `users` itself, and all
    /// reassignments are unwound from the persistent rollback log, so a
    /// warm structure performs no allocation per call.
    ///
    /// # Panics
    ///
    /// Panics if any user id is out of range.
    pub fn evaluate_station(&mut self, cap: u32, users: &[u32]) -> u32 {
        self.evaluate_station_list(cap, UserList::Ids(users))
    }

    /// [`evaluate_station`](Self::evaluate_station) over any
    /// [`UserList`] encoding. The compressed list is never decoded into
    /// a buffer: 64-aligned bitset lists are intersected word-wise with
    /// the free-user bitset in the pre-pass, everything else (and the
    /// phantom-station BFS) walks the list in place.
    ///
    /// # Panics
    ///
    /// Panics if any user id is out of range.
    pub fn evaluate_station_list(&mut self, cap: u32, users: UserList<'_>) -> u32 {
        let n = self.num_users();
        if let Some(max) = users.max_id() {
            assert!((max as usize) < n, "user {max} out of range for {n} users");
        }
        uavnet_obs::counters::MATCHING_TRIAL_EVALUATIONS.add(1);
        let trial_id = self.station_cap.len();
        self.rollback.clear();
        let mut gained = 0;
        // Pre-pass: claim unmatched covered users directly. Each is a
        // length-1 augmenting path, so applying them first leaves the
        // final matching value unchanged while skipping one full BFS
        // restart per claimed user (the dominant cost when the trial
        // station lands on fresh territory).
        match users {
            // 64-aligned bitset windows (what the coverage tables emit)
            // intersect word-by-word with the free bitset: matched
            // users vanish 64 at a time and every surviving bit is a
            // claimable free user — no per-user assignment lookups.
            UserList::Bits { base, words } if base % 64 == 0 => {
                let w0 = (base / 64) as usize;
                'words: for (i, &w) in words.iter().enumerate() {
                    let mut bits = w & self.free[w0 + i];
                    while bits != 0 {
                        if gained >= cap {
                            break 'words;
                        }
                        let u = base + i as u32 * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        self.rollback.push((u, None));
                        self.user_station[u as usize] = Some(trial_id);
                        self.free[w0 + i] &= !(1u64 << (u % 64));
                        self.matched += 1;
                        gained += 1;
                        uavnet_obs::counters::MATCHING_PREPASS_HITS.add(1);
                    }
                }
            }
            _ => users.for_each_while(|u| {
                if gained >= cap {
                    return false;
                }
                if self.user_station[u as usize].is_none() {
                    self.rollback.push((u, None));
                    self.user_station[u as usize] = Some(trial_id);
                    self.free[(u / 64) as usize] &= !(1u64 << (u % 64));
                    self.matched += 1;
                    gained += 1;
                    uavnet_obs::counters::MATCHING_PREPASS_HITS.add(1);
                }
                true
            }),
        }
        while gained < cap && self.augment_once(trial_id, Some(users), true) {
            gained += 1;
        }
        // Roll back user assignments in reverse order of application.
        while let Some((user, old)) = self.rollback.pop() {
            self.user_station[user as usize] = old;
            if old.is_none() {
                self.free[(user / 64) as usize] |= 1u64 << (user % 64);
            }
        }
        self.matched -= gained as usize;
        // The rollback must have restored the pre-trial matching
        // exactly — a drift here corrupts every later gain query.
        #[cfg(feature = "debug-validate")]
        self.assert_consistent();
        gained
    }

    /// Extends the user universe to `new_num_users`; new users start
    /// unmatched. The free-user bitset is re-derived from
    /// `user_station` instead of widened in place: the old last word
    /// had its tail bits masked *off*, and those positions now name
    /// real users that must read as free — widening the mask would
    /// leave them permanently invisible to the word-AND pre-passes.
    ///
    /// # Panics
    ///
    /// Panics if `new_num_users` is smaller than the current user
    /// count (the kernel never forgets users).
    pub fn grow_users(&mut self, new_num_users: usize) {
        let old = self.num_users();
        assert!(
            new_num_users >= old,
            "cannot shrink users from {old} to {new_num_users}"
        );
        self.user_station.resize(new_num_users, None);
        self.free = all_free_words(new_num_users);
        for (u, st) in self.user_station.iter().enumerate() {
            if st.is_some() {
                self.free[u / 64] &= !(1u64 << (u % 64));
            }
        }
        #[cfg(feature = "debug-validate")]
        self.assert_consistent();
    }

    /// Takes a station out of service: every user it currently serves
    /// is released back to the free pool, its load drops to zero and
    /// its capacity is zeroed so no later pass re-saturates it. The
    /// station id stays valid (ids are stable); only its ability to
    /// carry load is gone. Returns the number of users released.
    ///
    /// # Panics
    ///
    /// Panics if `st` is out of range.
    pub fn deactivate_station(&mut self, st: StationId) -> u32 {
        assert!(st < self.num_stations(), "station {st} out of range");
        let mut released = 0u32;
        match self.station_adj[st] {
            StationAdj::Ids { start, len } => {
                for idx in start..start + len {
                    let u = self.adj[idx] as usize;
                    if self.user_station[u] == Some(st) {
                        self.user_station[u] = None;
                        self.free[u / 64] |= 1u64 << (u % 64);
                        released += 1;
                    }
                }
            }
            StationAdj::Words { start, len, base } => {
                for wi in 0..len {
                    let mut bits = self.adj_words[start + wi];
                    while bits != 0 {
                        let u = (base + wi as u32 * 64 + bits.trailing_zeros()) as usize;
                        bits &= bits - 1;
                        if self.user_station[u] == Some(st) {
                            self.user_station[u] = None;
                            self.free[u / 64] |= 1u64 << (u % 64);
                            released += 1;
                        }
                    }
                }
            }
        }
        // Every user a station serves is in its adjacency, so the walk
        // must have found exactly the station's load.
        debug_assert_eq!(released, self.station_load[st]);
        self.matched -= released as usize;
        self.station_load[st] = 0;
        self.station_cap[st] = 0;
        #[cfg(feature = "debug-validate")]
        self.assert_consistent();
        released
    }

    /// One maximality-restoring pass: saturates every station that
    /// still has residual capacity, in id order, and returns the
    /// number of newly matched users.
    ///
    /// Starting from *any* valid matching (no over-capacity load,
    /// every assignment covered), a single pass suffices: by the
    /// standard augmenting-path lemma, a station with no augmenting
    /// path cannot gain one from later augmentations (no user ever
    /// becomes free during the pass), so after the pass no deficient
    /// station has an augmenting path and the matching is maximum.
    pub fn resaturate(&mut self) -> u32 {
        let mut gained = 0;
        for st in 0..self.num_stations() {
            if self.station_load[st] < self.station_cap[st] {
                gained += self.saturate(st);
            }
        }
        gained
    }

    /// Builds a matching from scratch: adds every `(capacity, coverable
    /// users)` station in order, saturating each, and returns the
    /// structure. The result is a *maximum* assignment.
    pub fn solve(num_users: usize, stations: &[(u32, Vec<u32>)]) -> Self {
        let mut m = CapacitatedMatching::new(num_users);
        for (cap, users) in stations {
            let st = m.add_station(*cap, users);
            m.saturate(st);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Reference solver: max-flow on the 4-layer network of §II-D.
    fn flow_reference(num_users: usize, stations: &[(u32, Vec<u32>)]) -> i64 {
        let k = stations.len();
        let s = 0;
        let t = 1 + num_users + k;
        let mut net = FlowNetwork::new(t + 1);
        for u in 0..num_users {
            net.add_arc(s, 1 + u, 1);
        }
        for (i, (cap, users)) in stations.iter().enumerate() {
            let st_node = 1 + num_users + i;
            for &u in users {
                net.add_arc(1 + u as usize, st_node, 1);
            }
            net.add_arc(st_node, t, *cap as i64);
        }
        net.max_flow(s, t)
    }

    #[test]
    fn simple_saturation() {
        let mut m = CapacitatedMatching::new(3);
        let st = m.add_station(2, &[0, 1, 2]);
        assert_eq!(m.saturate(st), 2);
        assert_eq!(m.matched_count(), 2);
        assert_eq!(m.station_load(st), 2);
    }

    #[test]
    fn augmenting_path_reassigns() {
        // Station A covers {0,1} cap 1; B covers {1} cap 1.
        // Greedy could give A user 1 and strand B; augmentation fixes it.
        let mut m = CapacitatedMatching::new(2);
        let a = m.add_station(1, &[1, 0]); // list order tempts A to take 1
        m.saturate(a);
        let b = m.add_station(1, &[1]);
        assert_eq!(m.saturate(b), 1);
        assert_eq!(m.matched_count(), 2);
        assert_eq!(m.assignment()[1], Some(b));
        assert_eq!(m.assignment()[0], Some(a));
    }

    #[test]
    fn chain_of_reassignments() {
        // A:{1,0} B:{1,2} C:{1}, all cap 1. A grabs user 1 first, B
        // displaces it to take 1 via a swap or takes 2 directly; adding
        // C must trigger a chain C←1, B←2 (or equivalent) so that all
        // three users 0, 1, 2 end up served.
        let mut m = CapacitatedMatching::new(3);
        let a = m.add_station(1, &[1, 0]);
        m.saturate(a);
        let b = m.add_station(1, &[1, 2]);
        m.saturate(b);
        let c = m.add_station(1, &[1]);
        assert_eq!(m.saturate(c), 1);
        assert_eq!(m.matched_count(), 3);
        // Every user served by a station that covers it.
        assert_eq!(m.assignment().iter().filter(|a| a.is_some()).count(), 3);
    }

    #[test]
    fn capacity_limits_load() {
        let mut m = CapacitatedMatching::new(5);
        let st = m.add_station(3, &[0, 1, 2, 3, 4]);
        assert_eq!(m.saturate(st), 3);
        assert_eq!(m.station_load(st), 3);
        assert_eq!(m.station_cap(st), 3);
    }

    #[test]
    fn zero_capacity_station() {
        let mut m = CapacitatedMatching::new(2);
        let st = m.add_station(0, &[0, 1]);
        assert_eq!(m.saturate(st), 0);
        assert_eq!(m.matched_count(), 0);
    }

    #[test]
    fn evaluate_leaves_state_untouched() {
        let mut m = CapacitatedMatching::new(4);
        let a = m.add_station(1, &[0, 1]);
        m.saturate(a);
        let before: Vec<_> = m.assignment().to_vec();
        let loads: Vec<_> = (0..m.num_stations()).map(|s| m.station_load(s)).collect();

        let gain = m.evaluate_station(2, &[0, 1, 2]);
        assert_eq!(gain, 2);

        assert_eq!(m.assignment(), &before[..]);
        assert_eq!(m.num_stations(), 1);
        assert_eq!(m.matched_count(), 1);
        for (s, &l) in loads.iter().enumerate() {
            assert_eq!(m.station_load(s), l);
        }
    }

    #[test]
    fn evaluate_matches_actual_insertion() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let num_users = rng.gen_range(1..20);
            let mut m = CapacitatedMatching::new(num_users);
            // Seed with a few random stations.
            for _ in 0..rng.gen_range(0..4) {
                let cap = rng.gen_range(0..4);
                let users: Vec<u32> = (0..num_users as u32)
                    .filter(|_| rng.gen_bool(0.4))
                    .collect();
                let st = m.add_station(cap, &users);
                m.saturate(st);
            }
            let cap = rng.gen_range(0..5);
            let users: Vec<u32> = (0..num_users as u32)
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            let predicted = m.evaluate_station(cap, &users);
            let st = m.add_station(cap, &users);
            let actual = m.saturate(st);
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn matches_flow_reference_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(7);
        for round in 0..60 {
            let num_users = rng.gen_range(1..25);
            let num_stations = rng.gen_range(0..6);
            let stations: Vec<(u32, Vec<u32>)> = (0..num_stations)
                .map(|_| {
                    let cap = rng.gen_range(0..6);
                    let users = (0..num_users as u32)
                        .filter(|_| rng.gen_bool(0.3))
                        .collect();
                    (cap, users)
                })
                .collect();
            let m = CapacitatedMatching::solve(num_users, &stations);
            let reference = flow_reference(num_users, &stations);
            assert_eq!(m.matched_count() as i64, reference, "round {round}");
        }
    }

    #[test]
    fn assignment_respects_coverage_and_capacity() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..30 {
            let num_users = rng.gen_range(1..30);
            let stations: Vec<(u32, Vec<u32>)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let cap = rng.gen_range(1..5);
                    let users = (0..num_users as u32)
                        .filter(|_| rng.gen_bool(0.4))
                        .collect();
                    (cap, users)
                })
                .collect();
            let m = CapacitatedMatching::solve(num_users, &stations);
            let mut loads = vec![0u32; stations.len()];
            for (u, st) in m.assignment().iter().enumerate() {
                if let Some(st) = *st {
                    assert!(
                        stations[st].1.contains(&(u as u32)),
                        "user {u} not coverable by station {st}"
                    );
                    loads[st] += 1;
                }
            }
            for (st, &l) in loads.iter().enumerate() {
                assert!(l <= stations[st].0, "station {st} over capacity");
                assert_eq!(l, m.station_load(st));
            }
        }
    }

    #[test]
    fn evaluate_then_reset_yields_reusable_empty_matching() {
        let mut m = CapacitatedMatching::new(6);
        let a = m.add_station(2, &[0, 1, 2]);
        m.saturate(a);
        let b = m.add_station(1, &[2, 3]);
        m.saturate(b);
        assert!(m.evaluate_station(3, &[3, 4, 5]) > 0);

        m.reset();
        assert_eq!(m.num_stations(), 0);
        assert_eq!(m.matched_count(), 0);
        assert_eq!(m.num_users(), 6);
        assert!(m.assignment().iter().all(|a| a.is_none()));

        // The reused structure behaves exactly like a fresh one.
        let st = m.add_station(2, &[0, 1, 2]);
        assert_eq!(m.evaluate_station(2, &[1, 3]), 2);
        assert_eq!(m.saturate(st), 2);
        assert_eq!(m.matched_count(), 2);
        let mut fresh = CapacitatedMatching::new(6);
        let fs = fresh.add_station(2, &[0, 1, 2]);
        fresh.saturate(fs);
        assert_eq!(fresh.assignment(), m.assignment());
    }

    #[test]
    fn trial_station_can_be_revisited_in_chained_augmentations() {
        // The trial station takes user 1 first; its second augmenting
        // path must route through its own earlier assignment (the BFS
        // revisits the phantom id), then everything rolls back.
        let mut m = CapacitatedMatching::new(3);
        let a = m.add_station(1, &[0, 1]);
        m.saturate(a); // a ← user 0
        let before = m.assignment().to_vec();
        let gain = m.evaluate_station(2, &[1, 2]);
        assert_eq!(gain, 2);
        assert_eq!(m.assignment(), &before[..]);
        assert_eq!(m.matched_count(), 1);
    }

    /// Splits a sorted id slice into maximal consecutive runs.
    fn runs_of(ids: &[u32]) -> Vec<crate::UserRun> {
        let mut runs: Vec<crate::UserRun> = Vec::new();
        for &u in ids {
            match runs.last_mut() {
                Some(r) if r.start + r.len == u => r.len += 1,
                _ => runs.push(crate::UserRun { start: u, len: 1 }),
            }
        }
        runs
    }

    /// Packs a sorted id slice into a bitset window based at the first id.
    fn bits_of(ids: &[u32]) -> (u32, Vec<u64>) {
        let base = ids.first().copied().unwrap_or(0);
        let span = ids.last().map_or(0, |&l| (l - base) as usize + 1);
        let mut words = vec![0u64; span.div_ceil(64)];
        for &u in ids {
            let off = (u - base) as usize;
            words[off / 64] |= 1 << (off % 64);
        }
        (base, words)
    }

    #[test]
    fn list_encodings_evaluate_and_commit_identically() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for _ in 0..40 {
            let num_users = rng.gen_range(1..40);
            let mut seed = CapacitatedMatching::new(num_users);
            for _ in 0..rng.gen_range(0..4) {
                let cap = rng.gen_range(0..5);
                let users: Vec<u32> = (0..num_users as u32)
                    .filter(|_| rng.gen_bool(0.4))
                    .collect();
                let st = seed.add_station(cap, &users);
                seed.saturate(st);
            }
            let cap = rng.gen_range(0..6);
            let ids: Vec<u32> = (0..num_users as u32)
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            let runs = runs_of(&ids);
            let (base, words) = bits_of(&ids);
            let lists = [
                UserList::Ids(&ids),
                UserList::Runs(&runs),
                UserList::Bits {
                    base,
                    words: &words,
                },
            ];
            // Same gain from every encoding, and the committed matching
            // is bit-for-bit the slice-path result.
            let mut reference = seed.clone();
            let want = reference.evaluate_station(cap, &ids);
            let rst = reference.add_station(cap, &ids);
            reference.saturate(rst);
            for list in lists {
                let mut m = seed.clone();
                assert_eq!(m.evaluate_station_list(cap, list), want);
                assert_eq!(m.assignment(), seed.assignment(), "trial must roll back");
                let st = m.add_station_list(cap, list);
                m.saturate(st);
                assert_eq!(m.assignment(), reference.assignment());
                assert_eq!(m.matched_count(), reference.matched_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_station_list_rejects_bad_run() {
        let mut m = CapacitatedMatching::new(4);
        m.add_station_list(1, UserList::Runs(&[crate::UserRun { start: 3, len: 2 }]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_user_id() {
        let mut m = CapacitatedMatching::new(2);
        m.add_station(1, &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn evaluate_rejects_bad_user_id() {
        let mut m = CapacitatedMatching::new(2);
        m.evaluate_station(1, &[5]);
    }

    #[test]
    fn grow_users_unmasks_tail_word() {
        // 3 users: the first free word is ..0111. Growing to 70 users
        // must make users 3..70 visible to the word-AND pre-pass — a
        // widened mask would leave 3..63 permanently "matched".
        let mut m = CapacitatedMatching::new(3);
        let a = m.add_station(3, &[0, 1, 2]);
        m.saturate(a);
        m.grow_users(70);
        assert_eq!(m.num_users(), 70);
        assert_eq!(m.matched_count(), 3);
        // A 64-aligned bitset station covering the grown tail must be
        // able to claim it through the word-wise pre-pass.
        let words = [!0u64, (1u64 << 6) - 1]; // users 0..70
        let st = m.add_station_list(
            67,
            UserList::Bits {
                base: 0,
                words: &words,
            },
        );
        assert_eq!(m.saturate(st), 67);
        assert_eq!(m.matched_count(), 70);
    }

    #[test]
    fn grow_users_matches_fresh_matching() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let n0 = rng.gen_range(1..40);
            let n1 = n0 + rng.gen_range(0..80usize);
            let stations: Vec<(u32, Vec<u32>)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let cap = rng.gen_range(0..6);
                    let users = (0..n0 as u32).filter(|_| rng.gen_bool(0.4)).collect();
                    (cap, users)
                })
                .collect();
            let mut grown = CapacitatedMatching::solve(n0, &stations);
            grown.grow_users(n1);
            let late_cap = rng.gen_range(1..6);
            let late: Vec<u32> = (0..n1 as u32).filter(|_| rng.gen_bool(0.4)).collect();
            let st = grown.add_station(late_cap, &late);
            grown.saturate(st);

            let mut all = stations.clone();
            all.push((late_cap, late));
            let fresh = CapacitatedMatching::solve(n1, &all);
            assert_eq!(grown.matched_count(), fresh.matched_count());
        }
    }

    #[test]
    fn deactivate_releases_exactly_its_users() {
        let mut m = CapacitatedMatching::new(4);
        let a = m.add_station(2, &[0, 1]);
        m.saturate(a);
        let b = m.add_station(2, &[2, 3]);
        m.saturate(b);
        assert_eq!(m.matched_count(), 4);
        assert_eq!(m.deactivate_station(a), 2);
        assert_eq!(m.matched_count(), 2);
        assert_eq!(m.station_load(a), 0);
        assert_eq!(m.station_cap(a), 0);
        assert_eq!(m.assignment()[0], None);
        assert_eq!(m.assignment()[1], None);
        assert_eq!(m.assignment()[2], Some(b));
        // Re-deactivating is a no-op.
        assert_eq!(m.deactivate_station(a), 0);
        // A replacement station can re-claim the released users.
        let c = m.add_station(2, &[0, 1]);
        assert_eq!(m.saturate(c), 2);
        assert_eq!(m.matched_count(), 4);
    }

    #[test]
    fn deactivate_word_station_releases_users() {
        let words = [0b1111u64];
        let mut m = CapacitatedMatching::new(4);
        let st = m.add_station_list(
            3,
            UserList::Bits {
                base: 0,
                words: &words,
            },
        );
        m.saturate(st);
        assert_eq!(m.matched_count(), 3);
        assert_eq!(m.deactivate_station(st), 3);
        assert_eq!(m.matched_count(), 0);
        assert!(m.assignment().iter().all(|a| a.is_none()));
    }

    #[test]
    fn resaturate_restores_maximum_after_deactivation() {
        let mut rng = SmallRng::seed_from_u64(23);
        for round in 0..40 {
            let num_users = rng.gen_range(1..30);
            let stations: Vec<(u32, Vec<u32>)> = (0..rng.gen_range(2..6))
                .map(|_| {
                    let cap = rng.gen_range(0..5);
                    let users = (0..num_users as u32)
                        .filter(|_| rng.gen_bool(0.35))
                        .collect();
                    (cap, users)
                })
                .collect();
            let mut m = CapacitatedMatching::solve(num_users, &stations);
            let dead = rng.gen_range(0..stations.len());
            m.deactivate_station(dead);
            m.resaturate();

            // The incremental result must equal a cold rebuild without
            // the dead station (max matching value is unique).
            let survivors: Vec<(u32, Vec<u32>)> = stations
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != dead)
                .map(|(_, s)| s.clone())
                .collect();
            let fresh = CapacitatedMatching::solve(num_users, &survivors);
            assert_eq!(m.matched_count(), fresh.matched_count(), "round {round}");
        }
    }

    #[test]
    fn resaturate_after_grow_equals_cold_solve() {
        let mut rng = SmallRng::seed_from_u64(31);
        for round in 0..30 {
            let n0 = rng.gen_range(1..25);
            let n1 = n0 + rng.gen_range(1..70usize);
            // Stations whose coverage extends past the original user
            // count (as coverage tables would after a surge rebuild).
            let full: Vec<(u32, Vec<u32>)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let cap = rng.gen_range(0..6);
                    let users = (0..n1 as u32).filter(|_| rng.gen_bool(0.4)).collect();
                    (cap, users)
                })
                .collect();
            // Seed the standing matching on the truncated universe.
            let truncated: Vec<(u32, Vec<u32>)> = full
                .iter()
                .map(|(c, us)| (*c, us.iter().copied().filter(|&u| u < n0 as u32).collect()))
                .collect();
            let mut m = CapacitatedMatching::solve(n0, &truncated);
            m.grow_users(n1);
            // Surged users appear as fresh stations carrying the new
            // coverage (the loop re-adds refreshed stations this way).
            for (i, (cap, users)) in full.iter().enumerate() {
                m.deactivate_station(i);
                let st = m.add_station(*cap, users);
                assert_eq!(st, full.len() + i);
            }
            m.resaturate();
            let fresh = CapacitatedMatching::solve(n1, &full);
            assert_eq!(m.matched_count(), fresh.matched_count(), "round {round}");
        }
    }
}
