//! Borrowed views over a set of user ids in one of three encodings.
//!
//! The coverage tables upstream store each per-location user set in
//! whichever encoding is smallest — explicit sorted ids, run-length
//! spans, or a packed bitset window — and the matching kernel must
//! consume any of them without decoding into a temporary buffer.
//! [`UserList`] is that zero-copy bridge: a `Copy` view plus an
//! ascending iterator, so trial insertions and station commits walk
//! compressed lists exactly as they walked plain slices.

/// One maximal run of consecutive user ids: `start, start + 1, …,
/// start + len − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserRun {
    /// First user id of the run.
    pub start: u32,
    /// Number of consecutive ids in the run (always ≥ 1 in encoded
    /// tables).
    pub len: u32,
}

/// A borrowed, strictly ascending set of user ids.
///
/// All three variants decode to the same logical sequence: user ids in
/// strictly increasing order, no duplicates. [`iter`](UserList::iter)
/// is allocation-free for every variant.
///
/// # Examples
///
/// ```
/// use uavnet_flow::{UserList, UserRun};
///
/// let ids = UserList::Ids(&[3, 4, 5, 9]);
/// let runs = UserList::Runs(&[UserRun { start: 3, len: 3 }, UserRun { start: 9, len: 1 }]);
/// let bits = UserList::Bits { base: 3, words: &[0b1000111] };
/// assert_eq!(ids.to_vec(), vec![3, 4, 5, 9]);
/// assert_eq!(runs.to_vec(), ids.to_vec());
/// assert_eq!(bits.to_vec(), ids.to_vec());
/// ```
#[derive(Debug, Clone, Copy)]
pub enum UserList<'a> {
    /// Explicit sorted ids.
    Ids(&'a [u32]),
    /// Sorted, disjoint, non-adjacent runs of consecutive ids.
    Runs(&'a [UserRun]),
    /// Packed bitset over the window `base .. base + 64 * words.len()`:
    /// bit `i` of the window marks user `base + i`.
    Bits {
        /// First user id of the window.
        base: u32,
        /// The window's bits, 64 per word, LSB first.
        words: &'a [u64],
    },
}

impl<'a> UserList<'a> {
    /// Number of user ids in the list (`O(runs)`/`O(words)` for the
    /// compressed variants — callers on a hot path should carry
    /// precomputed counts).
    pub fn count(&self) -> usize {
        match self {
            UserList::Ids(ids) => ids.len(),
            UserList::Runs(runs) => runs.iter().map(|r| r.len as usize).sum(),
            UserList::Bits { words, .. } => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether the list holds no ids.
    pub fn is_empty(&self) -> bool {
        match self {
            UserList::Ids(ids) => ids.is_empty(),
            UserList::Runs(runs) => runs.is_empty(),
            UserList::Bits { words, .. } => words.iter().all(|&w| w == 0),
        }
    }

    /// The largest id in the list, or `None` when empty. `O(1)` for
    /// ids/runs, `O(words)` for bitsets — used to validate id ranges
    /// without a full decode.
    pub fn max_id(&self) -> Option<u32> {
        match self {
            UserList::Ids(ids) => ids.last().copied(),
            UserList::Runs(runs) => runs.last().map(|r| r.start + r.len - 1),
            UserList::Bits { base, words } => words
                .iter()
                .enumerate()
                .rev()
                .find(|(_, &w)| w != 0)
                .map(|(i, &w)| base + i as u32 * 64 + (63 - w.leading_zeros())),
        }
    }

    /// Whether `id` is in the list: binary search for ids/runs, one
    /// bit test for bitsets.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            UserList::Ids(ids) => ids.binary_search(&id).is_ok(),
            UserList::Runs(runs) => runs
                .binary_search_by(|r| {
                    if id < r.start {
                        std::cmp::Ordering::Greater
                    } else if id >= r.start + r.len {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
            UserList::Bits { base, words } => {
                let Some(off) = id.checked_sub(*base) else {
                    return false;
                };
                words
                    .get(off as usize / 64)
                    .is_some_and(|w| w >> (off % 64) & 1 == 1)
            }
        }
    }

    /// An ascending iterator over the ids; allocation-free.
    pub fn iter(&self) -> UserListIter<'a> {
        UserListIter {
            inner: match *self {
                UserList::Ids(ids) => IterInner::Ids(ids.iter()),
                UserList::Runs(runs) => IterInner::Runs {
                    runs: runs.iter(),
                    next: 0,
                    remaining: 0,
                },
                UserList::Bits { base, words } => IterInner::Bits {
                    words,
                    base,
                    word: 0,
                    bits: words.first().copied().unwrap_or(0),
                },
            },
        }
    }

    /// Internal iteration in ascending order: calls `f` for each id
    /// until it returns `false` or the list is exhausted.
    ///
    /// This is the hot-path twin of [`iter`](UserList::iter): the
    /// encoding is matched once and each arm runs a tight loop over
    /// its concrete representation, where the external iterator pays
    /// an encoding dispatch per element. The matching kernel's
    /// pre-pass and BFS walk lists through this.
    #[inline(always)]
    pub fn for_each_while(self, mut f: impl FnMut(u32) -> bool) {
        match self {
            UserList::Ids(ids) => {
                for &u in ids {
                    if !f(u) {
                        return;
                    }
                }
            }
            UserList::Runs(runs) => {
                for r in runs {
                    for u in r.start..r.start + r.len {
                        if !f(u) {
                            return;
                        }
                    }
                }
            }
            UserList::Bits { base, words } => {
                for (i, &w) in words.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let u = base + i as u32 * 64 + bits.trailing_zeros();
                        if !f(u) {
                            return;
                        }
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Decodes into an owned vector (tests and slow paths only).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl<'a> From<&'a [u32]> for UserList<'a> {
    fn from(ids: &'a [u32]) -> Self {
        UserList::Ids(ids)
    }
}

impl<'a> IntoIterator for UserList<'a> {
    type Item = u32;
    type IntoIter = UserListIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending iterator over a [`UserList`]; see [`UserList::iter`].
#[derive(Debug, Clone)]
pub struct UserListIter<'a> {
    inner: IterInner<'a>,
}

#[derive(Debug, Clone)]
enum IterInner<'a> {
    Ids(std::slice::Iter<'a, u32>),
    Runs {
        runs: std::slice::Iter<'a, UserRun>,
        next: u32,
        remaining: u32,
    },
    Bits {
        words: &'a [u64],
        base: u32,
        word: usize,
        bits: u64,
    },
}

impl Iterator for UserListIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.inner {
            IterInner::Ids(iter) => iter.next().copied(),
            IterInner::Runs {
                runs,
                next,
                remaining,
            } => {
                if *remaining == 0 {
                    let run = runs.next()?;
                    *next = run.start;
                    *remaining = run.len;
                }
                *remaining -= 1;
                let id = *next;
                *next = next.wrapping_add(1);
                Some(id)
            }
            IterInner::Bits {
                words,
                base,
                word,
                bits,
            } => {
                while *bits == 0 {
                    *word += 1;
                    *bits = *words.get(*word)?;
                }
                let tz = bits.trailing_zeros();
                *bits &= *bits - 1;
                Some(*base + *word as u32 * 64 + tz)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_encodings_decode_identically() {
        let want = vec![0u32, 1, 2, 63, 64, 65, 130];
        let ids = UserList::Ids(&[0, 1, 2, 63, 64, 65, 130]);
        let runs = UserList::Runs(&[
            UserRun { start: 0, len: 3 },
            UserRun { start: 63, len: 3 },
            UserRun { start: 130, len: 1 },
        ]);
        let mut words = [0u64; 3];
        for &u in &want {
            words[u as usize / 64] |= 1 << (u % 64);
        }
        let bits = UserList::Bits {
            base: 0,
            words: &words,
        };
        for list in [ids, runs, bits] {
            assert_eq!(list.to_vec(), want);
            assert_eq!(list.count(), want.len());
            assert_eq!(list.max_id(), Some(130));
            assert!(!list.is_empty());
            for id in 0..200 {
                assert_eq!(list.contains(id), want.contains(&id), "id {id}");
            }
        }
    }

    #[test]
    fn bits_window_offsets() {
        // A window starting mid-id-space: bit i marks base + i.
        let list = UserList::Bits {
            base: 1000,
            words: &[0b101, 0b1],
        };
        assert_eq!(list.to_vec(), vec![1000, 1002, 1064]);
        assert_eq!(list.max_id(), Some(1064));
    }

    #[test]
    fn empty_lists() {
        for list in [
            UserList::Ids(&[]),
            UserList::Runs(&[]),
            UserList::Bits {
                base: 7,
                words: &[],
            },
            UserList::Bits {
                base: 7,
                words: &[0, 0],
            },
        ] {
            assert!(list.is_empty());
            assert_eq!(list.count(), 0);
            assert_eq!(list.max_id(), None);
            assert_eq!(list.to_vec(), Vec::<u32>::new());
        }
    }

    #[test]
    fn iterator_is_resumable_and_ascending() {
        let runs = [UserRun { start: 5, len: 4 }, UserRun { start: 100, len: 2 }];
        let list = UserList::Runs(&runs);
        let got: Vec<u32> = list.into_iter().collect();
        assert_eq!(got, vec![5, 6, 7, 8, 100, 101]);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
