//! Minimum-cost maximum flow (successive shortest paths with
//! potentials).
//!
//! Used for *rate-aware* user assignment: among all assignments that
//! serve the maximum number of users (the max flow), pick one that
//! maximizes the total data rate — encode each user→UAV arc with cost
//! `R_max − rate` and run min-cost max-flow (see
//! `uavnet_core::assign_users_max_rate`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a forward arc returned by [`MinCostFlow::add_arc`].
pub type CostArcId = usize;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: i64,
    cost: i64,
}

/// An integral min-cost max-flow solver (successive shortest paths,
/// Dijkstra with Johnson potentials; all arc costs must be
/// non-negative).
///
/// # Examples
///
/// ```
/// use uavnet_flow::MinCostFlow;
/// // Two parallel s→t paths: capacity 1 & cost 1, capacity 1 & cost 5.
/// let mut net = MinCostFlow::new(2);
/// net.add_arc(0, 1, 1, 1);
/// net.add_arc(0, 1, 1, 5);
/// let (flow, cost) = net.run(0, 1);
/// assert_eq!((flow, cost), (2, 6));
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    arcs: Vec<Arc>,
    adj: Vec<Vec<CostArcId>>,
}

impl MinCostFlow {
    /// Creates a network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Appends an isolated node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed arc with capacity `cap` and per-unit cost
    /// `cost`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, `cap < 0`, or
    /// `cost < 0` (the solver relies on non-negative costs).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> CostArcId {
        let n = self.num_nodes();
        assert!(from < n && to < n, "arc ({from},{to}) out of range");
        assert!(cap >= 0, "negative capacity {cap}");
        assert!(cost >= 0, "negative cost {cost}");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow routed through a forward arc.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a forward arc id.
    #[inline]
    pub fn flow_on(&self, id: CostArcId) -> i64 {
        assert!(
            id.is_multiple_of(2) && id < self.arcs.len(),
            "bad arc id {id}"
        );
        self.arcs[id ^ 1].cap
    }

    /// Computes the minimum-cost **maximum** flow from `source` to
    /// `sink`, returning `(flow, total_cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn run(&mut self, source: usize, sink: usize) -> (i64, i64) {
        let n = self.num_nodes();
        assert!(source < n && sink < n, "source/sink out of range");
        assert_ne!(source, sink, "source equals sink");
        let mut potential = vec![0i64; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        loop {
            // Dijkstra over reduced costs.
            let mut dist = vec![i64::MAX; n];
            let mut prev_arc = vec![usize::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[source] = 0;
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &id in &self.adj[u] {
                    let a = self.arcs[id];
                    if a.cap <= 0 || dist[u] == i64::MAX {
                        continue;
                    }
                    let reduced = a.cost + potential[u] - potential[a.to];
                    debug_assert!(reduced >= 0, "negative reduced cost");
                    let nd = dist[u] + reduced;
                    if nd < dist[a.to] {
                        dist[a.to] = nd;
                        prev_arc[a.to] = id;
                        heap.push(Reverse((nd, a.to)));
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break;
            }
            for v in 0..n {
                if dist[v] < i64::MAX {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the shortest path.
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while v != source {
                let id = prev_arc[v];
                bottleneck = bottleneck.min(self.arcs[id].cap);
                v = self.arcs[id ^ 1].to;
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let id = prev_arc[v];
                self.arcs[id].cap -= bottleneck;
                self.arcs[id ^ 1].cap += bottleneck;
                total_cost += bottleneck * self.arcs[id].cost;
                v = self.arcs[id ^ 1].to;
            }
            total_flow += bottleneck;
        }
        (total_flow, total_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn prefers_cheap_paths_first() {
        // s→a→t cost 2, s→b→t cost 10; capacities 1 each.
        let mut net = MinCostFlow::new(4);
        let cheap = net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 3, 1, 1);
        let dear = net.add_arc(0, 2, 1, 5);
        net.add_arc(2, 3, 1, 5);
        let (flow, cost) = net.run(0, 3);
        assert_eq!(flow, 2);
        assert_eq!(cost, 12);
        assert_eq!(net.flow_on(cheap), 1);
        assert_eq!(net.flow_on(dear), 1);
    }

    #[test]
    fn takes_a_costlier_detour_for_more_flow() {
        // Max flow requires the expensive arc even though a cheap
        // partial flow exists.
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 2, 0);
        net.add_arc(1, 3, 1, 0);
        net.add_arc(1, 2, 1, 7);
        net.add_arc(2, 3, 1, 0);
        let (flow, cost) = net.run(0, 3);
        assert_eq!(flow, 2);
        assert_eq!(cost, 7);
    }

    #[test]
    fn flow_value_matches_dinic_on_random_networks() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(2..8);
            let arcs: Vec<(usize, usize, i64, i64)> = (0..rng.gen_range(0..16))
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(0..5),
                        rng.gen_range(0..10),
                    )
                })
                .filter(|&(u, v, _, _)| u != v)
                .collect();
            let mut mc = MinCostFlow::new(n);
            let mut dinic = FlowNetwork::new(n);
            for &(u, v, cap, cost) in &arcs {
                mc.add_arc(u, v, cap, cost);
                dinic.add_arc(u, v, cap);
            }
            let (flow, _) = mc.run(0, n - 1);
            assert_eq!(flow, dinic.max_flow(0, n - 1));
        }
    }

    #[test]
    fn cost_optimality_vs_bruteforce_assignment() {
        // 3 workers × 3 jobs, unit assignment: compare against the
        // best of all 6 permutations.
        let costs = [[4i64, 1, 3], [2, 0, 5], [3, 2, 2]];
        let mut net = MinCostFlow::new(8); // s, w0..2, j0..2, t
        for w in 0..3 {
            net.add_arc(0, 1 + w, 1, 0);
            for j in 0..3 {
                net.add_arc(1 + w, 4 + j, 1, costs[w][j]);
            }
        }
        for j in 0..3 {
            net.add_arc(4 + j, 7, 1, 0);
        }
        let (flow, cost) = net.run(0, 7);
        assert_eq!(flow, 3);
        // Brute force over permutations.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let best: i64 = perms
            .iter()
            .map(|p| (0..3).map(|w| costs[w][p[w]]).sum())
            .min()
            .unwrap();
        assert_eq!(cost, best);
    }

    #[test]
    fn zero_flow_costs_nothing() {
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 5, 3);
        let (flow, cost) = net.run(0, 2);
        assert_eq!((flow, cost), (0, 0));
    }

    #[test]
    fn add_node_extends_network() {
        let mut net = MinCostFlow::new(2);
        let mid = net.add_node();
        net.add_arc(0, mid, 2, 1);
        net.add_arc(mid, 1, 2, 1);
        assert_eq!(net.run(0, 1), (2, 4));
    }

    #[test]
    #[should_panic(expected = "negative cost")]
    fn rejects_negative_costs() {
        let mut net = MinCostFlow::new(2);
        net.add_arc(0, 1, 1, -1);
    }
}
