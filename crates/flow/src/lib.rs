//! Integral maximum flow and capacitated bipartite matching.
//!
//! The optimal user-assignment subroutine of the paper (§II-D, Lemma 1)
//! is an integral max-flow problem on a 4-layer network
//! `s → users → deployed UAVs → t`, where user arcs have capacity 1 and
//! the arc from UAV `k` to `t` has capacity `C_k`. This crate provides:
//!
//! * [`FlowNetwork`] — a general Dinic max-flow solver with integral
//!   capacities. Arcs can be added *after* a flow has been computed and
//!   the flow re-augmented incrementally, which the deployment
//!   algorithms exploit when they grow the UAV set one location at a
//!   time;
//! * [`CapacitatedMatching`] — a specialized incremental structure for
//!   the same problem (unit-capacity users, capacitated stations) with
//!   cheap-rollback trial insertions, used by the lazy-greedy inner
//!   loop of Algorithm 2 to evaluate marginal coverage gains thousands
//!   of times without recomputing flows from scratch.
//!
//! The two implementations are cross-checked by property tests: for any
//! instance, the matching cardinality equals the max-flow value.
//!
//! # Examples
//!
//! ```
//! use uavnet_flow::FlowNetwork;
//!
//! // s=0, a=1, b=2, t=3 with a bottleneck of 3.
//! let mut net = FlowNetwork::new(4);
//! net.add_arc(0, 1, 5);
//! net.add_arc(1, 2, 3);
//! net.add_arc(2, 3, 5);
//! assert_eq!(net.max_flow(0, 3), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod matching;
mod mincost;
mod users;

pub use dinic::{ArcId, FlowNetwork};
pub use matching::{CapacitatedMatching, StationId};
pub use mincost::{CostArcId, MinCostFlow};
pub use users::{UserList, UserListIter, UserRun};
