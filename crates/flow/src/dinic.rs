//! Dinic's maximum-flow algorithm with incremental re-augmentation.

use std::collections::VecDeque;

/// Identifier of a forward arc returned by [`FlowNetwork::add_arc`].
///
/// The reverse (residual) arc is stored internally at `id ^ 1`.
pub type ArcId = usize;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: i64,
}

/// A flow network with integral capacities solved by Dinic's algorithm.
///
/// Nodes are `0 .. num_nodes`; arcs are directed and carry a residual
/// capacity. Calling [`max_flow`](FlowNetwork::max_flow) pushes as much
/// *additional* flow as the current residual network allows, so the
/// following incremental pattern works:
///
/// 1. build a network, run `max_flow` → `f₁`;
/// 2. add more arcs/nodes;
/// 3. run `max_flow` again → `f₂` (only the extra flow);
/// 4. total flow = `f₁ + f₂`.
///
/// # Examples
///
/// ```
/// use uavnet_flow::FlowNetwork;
/// let mut net = FlowNetwork::new(3);
/// let a = net.add_arc(0, 1, 2);
/// net.add_arc(1, 2, 1);
/// assert_eq!(net.max_flow(0, 2), 1);
/// assert_eq!(net.flow_on(a), 1);
/// // Widen the bottleneck and re-augment.
/// net.add_arc(1, 2, 5);
/// assert_eq!(net.max_flow(0, 2), 1); // one extra unit
/// assert_eq!(net.flow_on(a), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    adj: Vec<Vec<ArcId>>,
    // scratch buffers reused across runs
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.level.push(-1);
        self.iter.push(0);
        self.adj.len() - 1
    }

    /// Adds a directed arc `from → to` with capacity `cap` and returns
    /// its [`ArcId`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: i64) -> ArcId {
        let n = self.num_nodes();
        assert!(from < n && to < n, "arc ({from},{to}) out of range");
        assert!(cap >= 0, "negative capacity {cap}");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// The flow currently routed through a forward arc (equals the
    /// residual capacity accumulated on its reverse arc).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a forward arc id from
    /// [`add_arc`](FlowNetwork::add_arc).
    #[inline]
    pub fn flow_on(&self, id: ArcId) -> i64 {
        assert!(
            id.is_multiple_of(2) && id < self.arcs.len(),
            "bad arc id {id}"
        );
        self.arcs[id ^ 1].cap
    }

    /// Remaining capacity of a forward arc.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a forward arc id.
    #[inline]
    pub fn residual_of(&self, id: ArcId) -> i64 {
        assert!(
            id.is_multiple_of(2) && id < self.arcs.len(),
            "bad arc id {id}"
        );
        self.arcs[id].cap
    }

    fn bfs_levels(&mut self, source: usize, sink: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[source] = 0;
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &id in &self.adj[u] {
                let a = self.arcs[id];
                if a.cap > 0 && self.level[a.to] < 0 {
                    self.level[a.to] = self.level[u] + 1;
                    q.push_back(a.to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs_push(&mut self, u: usize, sink: usize, pushed: i64) -> i64 {
        if u == sink {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let id = self.adj[u][self.iter[u]];
            let Arc { to, cap } = self.arcs[id];
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs_push(to, sink, pushed.min(cap));
                if d > 0 {
                    self.arcs[id].cap -= d;
                    self.arcs[id ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Pushes the maximum additional flow from `source` to `sink` given
    /// the current residual capacities, returning the amount pushed.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        let n = self.num_nodes();
        assert!(source < n && sink < n, "source/sink out of range");
        assert_ne!(source, sink, "source equals sink");
        let mut flow = 0;
        while self.bfs_levels(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_push(source, sink, i64::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// Nodes reachable from `source` in the residual network — the
    /// source side of a minimum cut after a [`max_flow`] run.
    ///
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn min_cut_source_side(&self, source: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut q = VecDeque::new();
        seen[source] = true;
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &id in &self.adj[u] {
                let a = self.arcs[id];
                if a.cap > 0 && !seen[a.to] {
                    seen[a.to] = true;
                    q.push_back(a.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 4);
        net.add_arc(1, 2, 2);
        net.add_arc(2, 3, 9);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 3, 3);
        net.add_arc(0, 2, 5);
        net.add_arc(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 7);
    }

    #[test]
    fn classic_cross_network() {
        // The textbook 6-node example with a cross edge.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 2, 2);
        net.add_arc(1, 3, 4);
        net.add_arc(1, 4, 8);
        net.add_arc(2, 4, 9);
        net.add_arc(3, 5, 10);
        net.add_arc(4, 3, 6);
        net.add_arc(4, 5, 10);
        assert_eq!(net.max_flow(0, 5), 19);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut net = FlowNetwork::new(5);
        let arcs = [
            net.add_arc(0, 1, 7),
            net.add_arc(0, 2, 3),
            net.add_arc(1, 3, 4),
            net.add_arc(2, 3, 5),
            net.add_arc(1, 2, 2),
            net.add_arc(3, 4, 8),
        ];
        let f = net.max_flow(0, 4);
        // Net flow out of every interior node is zero.
        let ends = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2), (3, 4)];
        for node in 1..4 {
            let mut net_out = 0;
            for (i, &(u, v)) in ends.iter().enumerate() {
                let fl = net.flow_on(arcs[i]);
                if u == node {
                    net_out += fl;
                }
                if v == node {
                    net_out -= fl;
                }
            }
            assert_eq!(net_out, 0, "node {node}");
        }
        // Flow out of the source equals the reported max flow.
        let src_out = net.flow_on(arcs[0]) + net.flow_on(arcs[1]);
        assert_eq!(src_out, f);
    }

    #[test]
    fn incremental_augmentation_matches_fresh_solve() {
        // Build in two stages and compare with a from-scratch solve.
        let mut inc = FlowNetwork::new(5);
        inc.add_arc(0, 1, 2);
        inc.add_arc(1, 4, 1);
        inc.add_arc(0, 2, 2);
        inc.add_arc(2, 4, 2);
        let f1 = inc.max_flow(0, 4);
        inc.add_arc(1, 3, 5);
        inc.add_arc(3, 4, 5);
        let f2 = inc.max_flow(0, 4);

        let mut fresh = FlowNetwork::new(5);
        fresh.add_arc(0, 1, 2);
        fresh.add_arc(1, 4, 1);
        fresh.add_arc(0, 2, 2);
        fresh.add_arc(2, 4, 2);
        fresh.add_arc(1, 3, 5);
        fresh.add_arc(3, 4, 5);
        assert_eq!(f1 + f2, fresh.max_flow(0, 4));
    }

    #[test]
    fn add_node_grows_network() {
        let mut net = FlowNetwork::new(2);
        let mid = net.add_node();
        assert_eq!(mid, 2);
        net.add_arc(0, mid, 4);
        net.add_arc(mid, 1, 3);
        assert_eq!(net.max_flow(0, 1), 3);
    }

    #[test]
    fn min_cut_separates_source_and_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 3, 10);
        net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // The bottleneck arc 0→1 is saturated.
        assert!(!side[1]);
    }

    #[test]
    fn zero_capacity_blocks() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 0);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn rejects_equal_source_sink() {
        let mut net = FlowNetwork::new(2);
        net.max_flow(1, 1);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, -3);
    }

    #[test]
    fn assignment_shaped_network() {
        // 4 users, 2 stations with caps 1 and 2; user 3 uncovered.
        // s=0, users 1..=4, stations 5..=6, t=7.
        let mut net = FlowNetwork::new(8);
        for u in 1..=4 {
            net.add_arc(0, u, 1);
        }
        // station 5 covers users 1,2; station 6 covers users 2,3.
        net.add_arc(1, 5, 1);
        net.add_arc(2, 5, 1);
        net.add_arc(2, 6, 1);
        net.add_arc(3, 6, 1);
        net.add_arc(5, 7, 1);
        net.add_arc(6, 7, 2);
        assert_eq!(net.max_flow(0, 7), 3);
    }
}
