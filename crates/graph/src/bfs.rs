//! Breadth-first hop metrics and shortest-path reconstruction.

use crate::{Graph, Hops};
use std::collections::VecDeque;

/// Hop distance from `source` to every node (`None` = unreachable).
///
/// # Examples
///
/// ```
/// use uavnet_graph::{Graph, bfs_hops};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
/// assert_eq!(bfs_hops(&g, 0), vec![Some(0), Some(1), Some(2), None]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_hops(g: &Graph, source: usize) -> Vec<Option<Hops>> {
    multi_source_hops(g, std::iter::once(source))
}

/// Hop distance from the nearest of several `sources` to every node.
///
/// This is the metric `d_l` of §III-C: the minimum hop count between a
/// location and the seed set `{v*_1 … v*_s}`.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn multi_source_hops(g: &Graph, sources: impl IntoIterator<Item = usize>) -> Vec<Option<Hops>> {
    let n = g.num_nodes();
    let mut dist: Vec<Option<Hops>> = vec![None; n];
    let mut queue = VecDeque::new();
    for s in sources {
        assert!(s < n, "source {s} out of range for {n} nodes");
        if dist[s].is_none() {
            dist[s] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distances from `source` using only nodes for which
/// `allowed(node)` is true (the source must itself be allowed).
///
/// Used to route relay paths around forbidden cells.
pub fn bfs_hops_restricted(
    g: &Graph,
    source: usize,
    mut allowed: impl FnMut(usize) -> bool,
) -> Vec<Option<Hops>> {
    let n = g.num_nodes();
    let mut dist: Vec<Option<Hops>> = vec![None; n];
    if source >= n || !allowed(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() && allowed(v) {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The hop distance between two nodes, or `None` if disconnected.
pub fn hop_distance(g: &Graph, u: usize, v: usize) -> Option<Hops> {
    if u == v {
        return Some(0);
    }
    bfs_hops(g, u)[v]
}

/// A shortest path from `u` to `v` as a node sequence `[u, …, v]`, or
/// `None` if disconnected.
///
/// Ties between equal-length paths are broken by BFS discovery order
/// (the first dequeued node to reach a cell becomes its parent), which
/// is deterministic for a given adjacency insertion order. Layers that
/// need to reproduce these exact sequences (the substrate-backed
/// connection in `uavnet-core`) call this same function rather than
/// re-deriving paths from hop tables.
///
/// # Examples
///
/// ```
/// use uavnet_graph::{Graph, shortest_path};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
/// let p = shortest_path(&g, 1, 3).unwrap();
/// assert_eq!(p.len(), 3); // 1-0-3 or 1-2-3
/// assert_eq!(p[0], 1);
/// assert_eq!(p[2], 3);
/// ```
pub fn shortest_path(g: &Graph, u: usize, v: usize) -> Option<Vec<usize>> {
    shortest_path_restricted(g, u, v, |_| true)
}

/// A shortest path from `u` to `v` using only `allowed` nodes (both
/// endpoints must be allowed), or `None` if no such path exists.
///
/// Same discovery-order tie-break as [`shortest_path`].
pub fn shortest_path_restricted(
    g: &Graph,
    u: usize,
    v: usize,
    mut allowed: impl FnMut(usize) -> bool,
) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    if u >= n || v >= n || !allowed(u) || !allowed(v) {
        return None;
    }
    if u == v {
        return Some(vec![u]);
    }
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[u] = true;
    queue.push_back(u);
    'outer: while let Some(x) = queue.pop_front() {
        for &y in g.neighbors(x) {
            if !seen[y] && allowed(y) {
                seen[y] = true;
                parent[y] = Some(x);
                if y == v {
                    break 'outer;
                }
                queue.push_back(y);
            }
        }
    }
    if !seen[v] {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], u);
    Some(path)
}

/// The connected components of `g`, each as a sorted node list; the
/// list of components is sorted by smallest member.
///
/// # Examples
///
/// ```
/// use uavnet_graph::{Graph, connected_components};
/// let g = Graph::from_edges(5, [(0, 1), (3, 4)]);
/// let comps = connected_components(&g);
/// assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = vec![start];
        seen[start] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    comp.push(v);
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// The hop diameter of `g`: the largest finite hop distance between
/// any two nodes, or `None` for an empty graph. Disconnected pairs are
/// ignored (use [`connected_components`] to detect them).
///
/// # Examples
///
/// ```
/// use uavnet_graph::{Graph, hop_diameter};
/// let g = Graph::from_edges(4, (0..3).map(|i| (i, i + 1)));
/// assert_eq!(hop_diameter(&g), Some(3));
/// ```
pub fn hop_diameter(g: &Graph) -> Option<Hops> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..n {
        for d in bfs_hops(g, v).into_iter().flatten() {
            best = best.max(d);
        }
    }
    Some(best)
}

/// Whether the sub-graph induced by `subset` is connected (an empty or
/// singleton subset counts as connected).
///
/// This is the paper's constraint (iii): the deployed UAV network must
/// be connected.
///
/// # Examples
///
/// ```
/// use uavnet_graph::{Graph, is_connected_subset};
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
/// assert!(is_connected_subset(&g, &[0, 1, 2]));
/// assert!(!is_connected_subset(&g, &[0, 1, 3]));
/// ```
pub fn is_connected_subset(g: &Graph, subset: &[usize]) -> bool {
    if subset.len() <= 1 {
        return true;
    }
    let mut in_set = vec![false; g.num_nodes()];
    for &v in subset {
        in_set[v] = true;
    }
    let reach = bfs_hops_restricted(g, subset[0], |x| in_set[x]);
    subset.iter().all(|&v| reach[v].is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn hops_on_path() {
        let g = path_graph(5);
        let d = bfs_hops(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn hops_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = path_graph(7);
        let d = multi_source_hops(&g, [0, 6]);
        assert_eq!(
            d.iter().map(|x| x.unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 2, 1, 0]
        );
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = path_graph(3);
        let d = multi_source_hops(&g, std::iter::empty());
        assert!(d.iter().all(|x| x.is_none()));
    }

    #[test]
    fn hop_distance_symmetry() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]);
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(hop_distance(&g, u, v), hop_distance(&g, v, u));
            }
        }
        assert_eq!(hop_distance(&g, 0, 5), None);
        assert_eq!(hop_distance(&g, 5, 5), Some(0));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len() as u32 - 1, hop_distance(&g, 0, 3).unwrap());
        // Each consecutive pair is an edge.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_same_node() {
        let g = path_graph(3);
        assert_eq!(shortest_path(&g, 1, 1), Some(vec![1]));
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(shortest_path(&g, 0, 3), None);
    }

    #[test]
    fn restricted_path_respects_filter() {
        // 0-1-2 and 0-3-4-2: shortest is via 1, but forbid node 1.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]);
        let p = shortest_path_restricted(&g, 0, 2, |x| x != 1).unwrap();
        assert_eq!(p, vec![0, 3, 4, 2]);
        // Forbidding both routes disconnects.
        assert_eq!(
            shortest_path_restricted(&g, 0, 2, |x| x != 1 && x != 4),
            None
        );
    }

    #[test]
    fn restricted_bfs_excluded_source() {
        let g = path_graph(3);
        let d = bfs_hops_restricted(&g, 0, |x| x != 0);
        assert!(d.iter().all(|x| x.is_none()));
    }

    #[test]
    fn connected_subset_checks() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[5]));
        assert!(is_connected_subset(&g, &[0, 1]));
        assert!(is_connected_subset(&g, &[0, 2, 1]));
        assert!(!is_connected_subset(&g, &[0, 2])); // 1 missing: not induced-connected
        assert!(!is_connected_subset(&g, &[0, 3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        let g = path_graph(3);
        let _ = bfs_hops(&g, 5);
    }

    #[test]
    fn components_partition_the_nodes() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (4, 5)]);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6]]);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn components_of_empty_graph() {
        assert!(connected_components(&Graph::new(0)).is_empty());
        assert_eq!(connected_components(&Graph::new(1)), vec![vec![0]]);
    }

    #[test]
    fn diameter_cases() {
        assert_eq!(hop_diameter(&Graph::new(0)), None);
        assert_eq!(hop_diameter(&Graph::new(3)), Some(0)); // no edges
        assert_eq!(hop_diameter(&path_graph(5)), Some(4));
        // Cycle of 6: diameter 3.
        let mut g = path_graph(6);
        g.add_edge(5, 0);
        assert_eq!(hop_diameter(&g), Some(3));
        // Disconnected: diameter over the largest reachable pair only.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(hop_diameter(&g), Some(2));
    }
}
