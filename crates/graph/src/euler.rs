//! Eulerian tours and the path-splitting construction of the paper's
//! approximation analysis (§III-A, Fig. 2).
//!
//! Given the optimal deployment's spanning tree `T*` with `K` nodes, the
//! paper duplicates `K − 2` of its `K − 1` edges so that the resulting
//! multigraph has an **open Eulerian path** with `2K − 3` edges (hence
//! `2K − 2` node visits), then splits the visit sequence into
//! `Δ = ⌈(2K − 2) / L⌉` segments of `L` nodes each. One of those segments
//! must carry at least `1/Δ` of the optimum's coverage — the pigeonhole
//! step behind the `O(√(s/K))` ratio.
//!
//! These routines are exercised by the test-suite to validate the
//! combinatorial claims (they are not needed by `approAlg` at run time).

use crate::{Graph, UnionFind};
use std::collections::HashMap;

/// Validates that `edges` over `n` nodes form a tree (connected, `n − 1`
/// edges, no duplicates/self-loops). Returns `false` otherwise.
pub fn is_tree(n: usize, edges: &[(usize, usize)]) -> bool {
    if n == 0 {
        return edges.is_empty();
    }
    if edges.len() != n - 1 {
        return false;
    }
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        if u >= n || v >= n || u == v || !uf.union(u, v) {
            return false;
        }
    }
    uf.num_sets() == 1
}

/// An Eulerian path in the multigraph over `n` nodes given by `edges`
/// (parallel edges allowed), as a node-visit sequence; `None` if none
/// exists.
///
/// An Eulerian path exists iff all edges lie in one connected component
/// and the number of odd-degree nodes is 0 or 2 (Hierholzer).
///
/// # Examples
///
/// ```
/// use uavnet_graph::euler::eulerian_path;
/// // Doubled path 0-1-2: edges {01, 01, 12, 12} — a closed tour exists.
/// let tour = eulerian_path(3, &[(0, 1), (0, 1), (1, 2), (1, 2)]).unwrap();
/// assert_eq!(tour.len(), 5); // 4 edges → 5 visits
/// ```
pub fn eulerian_path(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    if edges.is_empty() {
        return Some(Vec::new());
    }
    let mut degree = vec![0usize; n];
    // adjacency as (neighbor, edge id)
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (id, &(u, v)) in edges.iter().enumerate() {
        if u >= n || v >= n || u == v {
            return None;
        }
        degree[u] += 1;
        degree[v] += 1;
        adj[u].push((v, id));
        adj[v].push((u, id));
    }
    // Connectivity over nodes incident to at least one edge.
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        uf.union(u, v);
    }
    let touched: Vec<usize> = (0..n).filter(|&v| degree[v] > 0).collect();
    let root = uf.find(touched[0]);
    if touched.iter().any(|&v| uf.find(v) != root) {
        return None;
    }
    let odd: Vec<usize> = touched
        .iter()
        .copied()
        .filter(|&v| degree[v] % 2 == 1)
        .collect();
    let start = match odd.len() {
        0 => touched[0],
        2 => odd[0],
        _ => return None,
    };

    // Hierholzer with explicit stack.
    let mut used = vec![false; edges.len()];
    let mut iter_pos = vec![0usize; n];
    let mut stack = vec![start];
    let mut path = Vec::with_capacity(edges.len() + 1);
    while let Some(&v) = stack.last() {
        let mut advanced = false;
        while iter_pos[v] < adj[v].len() {
            let (to, id) = adj[v][iter_pos[v]];
            iter_pos[v] += 1;
            if !used[id] {
                used[id] = true;
                stack.push(to);
                advanced = true;
                break;
            }
        }
        if !advanced {
            path.push(v);
            stack.pop();
        }
    }
    if path.len() != edges.len() + 1 {
        return None; // disconnected edge set slipped through
    }
    path.reverse();
    Some(path)
}

/// The paper's construction: duplicate all but one edge of a `K`-node
/// tree and return the resulting open Eulerian path with `2K − 3` edges
/// (`2K − 2` node visits). For `K = 1` returns the single node; `K = 0`
/// returns an empty path.
///
/// # Panics
///
/// Panics if `edges` do not form a tree over `n` nodes.
///
/// # Examples
///
/// ```
/// use uavnet_graph::euler::open_euler_path_of_tree;
/// let k = 5;
/// let tree: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
/// let path = open_euler_path_of_tree(k, &tree);
/// assert_eq!(path.len(), 2 * k - 2); // 2K−3 edges → 2K−2 visits
/// ```
pub fn open_euler_path_of_tree(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    assert!(is_tree(n, edges), "input must be a tree over {n} nodes");
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // Keep the first edge single; duplicate the remaining K−2 edges.
    let mut multi = Vec::with_capacity(2 * edges.len() - 1);
    for (i, &e) in edges.iter().enumerate() {
        multi.push(e);
        if i > 0 {
            multi.push(e);
        }
    }
    eulerian_path(n, &multi).expect("doubled-but-one tree always has an open Eulerian path")
}

/// Splits a node-visit sequence into segments of exactly `l` nodes (the
/// last segment may be shorter), mirroring the paper's split of
/// `P_Euler` into `Δ = ⌈len / L⌉` subpaths (Fig. 2(c)).
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn split_into_segments(path: &[usize], l: usize) -> Vec<&[usize]> {
    assert!(l > 0, "segment length must be positive");
    path.chunks(l).collect()
}

/// Checks whether `path` is a valid walk in `g` (each consecutive pair
/// is an edge).
pub fn is_walk(g: &Graph, path: &[usize]) -> bool {
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Multiplicity count of each undirected edge along a walk, keyed by
/// `(min, max)`.
pub fn edge_multiplicities(path: &[usize]) -> HashMap<(usize, usize), usize> {
    let mut m = HashMap::new();
    for w in path.windows(2) {
        let key = (w[0].min(w[1]), w[0].max(w[1]));
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(k: usize) -> Vec<(usize, usize)> {
        (1..k).map(|i| (0, i)).collect()
    }

    #[test]
    fn tree_validation() {
        assert!(is_tree(1, &[]));
        assert!(is_tree(3, &[(0, 1), (1, 2)]));
        assert!(!is_tree(3, &[(0, 1)])); // too few edges
        assert!(!is_tree(3, &[(0, 1), (0, 1)])); // cycle/duplicate
        assert!(!is_tree(4, &[(0, 1), (2, 3), (0, 1)]));
        assert!(!is_tree(2, &[(0, 2)])); // out of range
    }

    #[test]
    fn euler_path_on_simple_path() {
        let p = eulerian_path(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(p == vec![0, 1, 2] || p == vec![2, 1, 0]);
    }

    #[test]
    fn euler_path_rejects_four_odd() {
        // Two disjoint edges: 4 odd-degree nodes and disconnected.
        assert!(eulerian_path(4, &[(0, 1), (2, 3)]).is_none());
        // Star with 3 leaves: 3 odd nodes (leaves) + center odd → 4 odd.
        assert!(eulerian_path(4, &star(4)).is_none());
    }

    #[test]
    fn euler_path_uses_every_edge_once() {
        let edges = [(0, 1), (0, 1), (1, 2), (1, 2), (2, 3)];
        let p = eulerian_path(4, &edges).unwrap();
        assert_eq!(p.len(), edges.len() + 1);
        let mult = edge_multiplicities(&p);
        assert_eq!(mult[&(0, 1)], 2);
        assert_eq!(mult[&(1, 2)], 2);
        assert_eq!(mult[&(2, 3)], 1);
    }

    #[test]
    fn open_path_has_2k_minus_2_visits() {
        for k in 2..10 {
            // path-shaped tree
            let tree: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
            let p = open_euler_path_of_tree(k, &tree);
            assert_eq!(p.len(), 2 * k - 2, "K={k}");
            // star-shaped tree
            let p = open_euler_path_of_tree(k, &star(k));
            assert_eq!(p.len(), 2 * k - 2, "star K={k}");
        }
    }

    #[test]
    fn open_path_visits_every_tree_node() {
        let tree = [(0, 1), (1, 2), (1, 3), (3, 4)];
        let p = open_euler_path_of_tree(5, &tree);
        let mut seen: Vec<_> = p.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn open_path_duplicates_all_but_one_edge() {
        let tree = [(0, 1), (1, 2), (1, 3)];
        let p = open_euler_path_of_tree(4, &tree);
        let mult = edge_multiplicities(&p);
        let singles = mult.values().filter(|&&c| c == 1).count();
        let doubles = mult.values().filter(|&&c| c == 2).count();
        assert_eq!(singles, 1);
        assert_eq!(doubles, tree.len() - 1);
    }

    #[test]
    fn segment_split_counts_match_delta() {
        // K = 11, L = 10 (the paper's Fig. 2(c) example): Δ = ⌈20/10⌉ = 2.
        let k = 11;
        let tree: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
        let p = open_euler_path_of_tree(k, &tree);
        assert_eq!(p.len(), 20);
        let segs = split_into_segments(&p, 10);
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.len() == 10));
    }

    #[test]
    fn segment_split_last_may_be_short() {
        let p: Vec<usize> = (0..7).collect();
        let segs = split_into_segments(&p, 3);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[2].len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn segment_split_rejects_zero() {
        let _ = split_into_segments(&[0, 1], 0);
    }

    #[test]
    fn walk_validation() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(is_walk(&g, &[0, 1, 2, 1, 0]));
        assert!(!is_walk(&g, &[0, 2]));
        assert!(is_walk(&g, &[3])); // trivial walk
    }

    #[test]
    fn empty_cases() {
        assert_eq!(eulerian_path(0, &[]), Some(vec![]));
        assert_eq!(open_euler_path_of_tree(0, &[]), Vec::<usize>::new());
        assert_eq!(open_euler_path_of_tree(1, &[]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "must be a tree")]
    fn open_path_rejects_non_tree() {
        let _ = open_euler_path_of_tree(3, &[(0, 1)]);
    }
}
