//! Graph substrate for `uavnet`: adjacency graphs, BFS hop metrics,
//! minimum spanning trees, Eulerian paths and connectivity utilities.
//!
//! The deployment algorithms in the paper operate on the *candidate
//! hovering location graph* `G[V]` — nodes are grid cells, edges join
//! cells whose centers are within the UAV communication range `R_uav`.
//! This crate provides everything the algorithms need over that graph:
//!
//! * [`Graph`] — a compact undirected adjacency-list graph;
//! * [`bfs_hops`] / [`multi_source_hops`] / [`shortest_path`] — hop
//!   metrics and path reconstruction (used for the matroid `M2` hop
//!   budgets and for expanding MST edges into relay paths);
//! * [`prim_mst`] — MST over a dense weight matrix (used to connect the
//!   greedily chosen locations, Fig. 3 of the paper);
//! * [`euler`] — Eulerian tours/paths over doubled spanning trees and the
//!   segment-splitting used in the approximation-ratio analysis (Fig. 2);
//! * [`ConnectivitySubstrate`] — a precomputed all-pairs hop matrix
//!   with component bitsets, built once per instance and shared
//!   read-only across sweep threads;
//! * [`UnionFind`] and connectivity helpers.
//!
//! # Examples
//!
//! ```
//! use uavnet_graph::{Graph, bfs_hops};
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! let hops = bfs_hops(&g, 0);
//! assert_eq!(hops[2], Some(2));
//! assert_eq!(hops[3], None); // node 3 is unreachable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adj;
mod bfs;
pub mod euler;
mod mst;
mod substrate;
mod unionfind;

pub use adj::Graph;
pub use bfs::{
    bfs_hops, bfs_hops_restricted, connected_components, hop_diameter, hop_distance,
    is_connected_subset, multi_source_hops, shortest_path, shortest_path_restricted,
};
pub use mst::{prim_mst, MstError};
pub use substrate::{ConnectivitySubstrate, SubstrateError, UNREACHABLE_HOPS};
pub use unionfind::UnionFind;

/// Hop count type: BFS layers are small, `u32` is ample.
pub type Hops = u32;
