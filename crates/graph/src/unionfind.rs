//! Disjoint-set union (union–find) with path halving and union by size.

/// A union–find structure over elements `0 .. n`.
///
/// # Examples
///
/// ```
/// use uavnet_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.same(0, 1));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x` (path-halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they
    /// were previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if an element is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 4));
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn transitive_closure_on_chain() {
        let n = 50;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, n - 1));
        assert_eq!(uf.set_size(0), n);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
