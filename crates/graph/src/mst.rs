//! Minimum spanning trees over dense weight matrices.

use crate::Hops;
use std::error::Error;
use std::fmt;

/// Error from [`prim_mst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstError {
    /// The weight matrix was not square `k × k` with `k` nodes.
    MalformedMatrix {
        /// Expected dimension.
        expected: usize,
    },
    /// Some node could not be reached through finite weights, so no
    /// spanning tree exists.
    Disconnected {
        /// A node left outside the tree.
        node: usize,
    },
}

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MstError::MalformedMatrix { expected } => {
                write!(f, "weight matrix must be {expected}x{expected}")
            }
            MstError::Disconnected { node } => {
                write!(f, "node {node} unreachable through finite weights")
            }
        }
    }
}

impl Error for MstError {}

/// Prim's algorithm over a dense symmetric weight matrix.
///
/// `weights[u][v]` is the edge weight between local nodes `u` and `v`;
/// `None` marks a missing edge. Returns the MST as `k − 1` edges
/// `(u, v, w)` with `u < v`, in discovery order. A 0- or 1-node input
/// yields an empty edge list.
///
/// In Algorithm 2 the nodes are the greedily chosen hovering locations
/// and the weights are pairwise hop distances in the candidate graph
/// (Fig. 3(b) of the paper).
///
/// # Errors
///
/// * [`MstError::MalformedMatrix`] if the matrix is not `k × k`;
/// * [`MstError::Disconnected`] if no spanning tree exists.
///
/// # Examples
///
/// ```
/// use uavnet_graph::prim_mst;
/// let w = vec![
///     vec![None, Some(1), Some(4)],
///     vec![Some(1), None, Some(2)],
///     vec![Some(4), Some(2), None],
/// ];
/// let mst = prim_mst(&w)?;
/// let total: u32 = mst.iter().map(|e| e.2).sum();
/// assert_eq!(total, 3);
/// # Ok::<(), uavnet_graph::MstError>(())
/// ```
pub fn prim_mst(weights: &[Vec<Option<Hops>>]) -> Result<Vec<(usize, usize, Hops)>, MstError> {
    let k = weights.len();
    for row in weights {
        if row.len() != k {
            return Err(MstError::MalformedMatrix { expected: k });
        }
    }
    if k <= 1 {
        return Ok(Vec::new());
    }
    let mut in_tree = vec![false; k];
    let mut best: Vec<Option<(Hops, usize)>> = vec![None; k]; // (weight, parent)
    let mut edges = Vec::with_capacity(k - 1);
    in_tree[0] = true;
    for v in 1..k {
        best[v] = weights[0][v].map(|w| (w, 0));
    }
    for _ in 1..k {
        let mut pick: Option<(usize, Hops, usize)> = None; // (node, w, parent)
        for v in 0..k {
            if in_tree[v] {
                continue;
            }
            if let Some((w, p)) = best[v] {
                if pick.is_none_or(|(_, bw, _)| w < bw) {
                    pick = Some((v, w, p));
                }
            }
        }
        let (v, w, p) = match pick {
            Some(x) => x,
            None => {
                let node = (0..k).find(|&v| !in_tree[v]).expect("some node missing");
                return Err(MstError::Disconnected { node });
            }
        };
        in_tree[v] = true;
        edges.push((p.min(v), p.max(v), w));
        for u in 0..k {
            if in_tree[u] {
                continue;
            }
            if let Some(w2) = weights[v][u] {
                if best[u].is_none_or(|(bw, _)| w2 < bw) {
                    best[u] = Some((w2, v));
                }
            }
        }
    }
    #[cfg(feature = "debug-validate")]
    {
        let mut uf = crate::UnionFind::new(k);
        assert_eq!(edges.len(), k - 1, "debug-validate: MST edge count");
        for &(a, b, w) in &edges {
            assert_eq!(
                weights[a][b],
                Some(w),
                "debug-validate: MST edge ({a}, {b}) not in the weight matrix"
            );
            assert!(uf.union(a, b), "debug-validate: MST contains a cycle");
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnionFind;

    fn complete(ws: &[(usize, usize, Hops)], k: usize) -> Vec<Vec<Option<Hops>>> {
        let mut m = vec![vec![None; k]; k];
        for &(u, v, w) in ws {
            m[u][v] = Some(w);
            m[v][u] = Some(w);
        }
        m
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(prim_mst(&[]).unwrap(), vec![]);
        assert_eq!(prim_mst(&[vec![None]]).unwrap(), vec![]);
    }

    #[test]
    fn two_nodes() {
        let m = complete(&[(0, 1, 7)], 2);
        assert_eq!(prim_mst(&m).unwrap(), vec![(0, 1, 7)]);
    }

    #[test]
    fn picks_cheaper_triangle_edges() {
        let m = complete(&[(0, 1, 1), (1, 2, 2), (0, 2, 4)], 3);
        let mst = prim_mst(&m).unwrap();
        let total: Hops = mst.iter().map(|e| e.2).sum();
        assert_eq!(total, 3);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn detects_disconnection() {
        let m = complete(&[(0, 1, 1)], 3);
        assert!(matches!(
            prim_mst(&m),
            Err(MstError::Disconnected { node: 2 })
        ));
    }

    #[test]
    fn rejects_malformed() {
        let m = vec![vec![None, Some(1)], vec![Some(1)]];
        assert!(matches!(
            prim_mst(&m),
            Err(MstError::MalformedMatrix { .. })
        ));
    }

    #[test]
    fn mst_is_spanning_and_acyclic() {
        // A 6-node weighted graph; verify tree structure via union-find.
        let m = complete(
            &[
                (0, 1, 3),
                (0, 2, 5),
                (1, 2, 1),
                (1, 3, 9),
                (2, 4, 2),
                (3, 4, 4),
                (4, 5, 6),
                (3, 5, 2),
            ],
            6,
        );
        let mst = prim_mst(&m).unwrap();
        assert_eq!(mst.len(), 5);
        let mut uf = UnionFind::new(6);
        for &(u, v, _) in &mst {
            assert!(uf.union(u, v), "cycle edge ({u},{v})");
        }
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn mst_weight_matches_kruskal_bruteforce() {
        // Cross-check Prim against a simple Kruskal on a fixed instance.
        let edges = [
            (0, 1, 4),
            (0, 2, 3),
            (1, 2, 1),
            (1, 3, 2),
            (2, 3, 4),
            (3, 4, 2),
            (2, 4, 5),
        ];
        let m = complete(&edges, 5);
        let prim_total: Hops = prim_mst(&m).unwrap().iter().map(|e| e.2).sum();

        let mut sorted = edges;
        sorted.sort_by_key(|e| e.2);
        let mut uf = UnionFind::new(5);
        let mut kruskal_total = 0;
        for (u, v, w) in sorted {
            if uf.union(u, v) {
                kruskal_total += w;
            }
        }
        assert_eq!(prim_total, kruskal_total);
    }

    #[test]
    fn error_display() {
        assert!(MstError::Disconnected { node: 3 }.to_string().contains("3"));
        assert!(MstError::MalformedMatrix { expected: 2 }
            .to_string()
            .contains("2x2"));
    }
}
