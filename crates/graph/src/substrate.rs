//! Precomputed read-only connectivity substrate over a fixed graph.
//!
//! The subset sweep of Algorithm 2 asks the same hop-structure
//! questions — "how far apart are these two locations?", "are they in
//! the same component?", "give me a shortest relay path" — thousands
//! of times per run, once per seed subset. [`ConnectivitySubstrate`]
//! answers all of them from tables built **once** per instance:
//!
//! * a CSR copy of the adjacency (cache-friendly neighbor scans);
//! * the full all-pairs hop matrix in `u16` (`u16::MAX` = unreachable),
//!   one BFS per node over the CSR at build time;
//! * component ids plus one membership bitset per component, so
//!   reachability is a word-indexed bit test and "how many candidates
//!   can this seed reach" is a precomputed count.
//!
//! Shared immutably (`&ConnectivitySubstrate`) across sweep threads:
//! every query is a read, no locks. The tables replace the *distance*
//! BFS runs of the sweep hot path (pairwise weights, matroid depths,
//! gateway metrics); the handful of actual relay-path extractions per
//! subset stay on [`crate::shortest_path`] so substrate-backed and
//! BFS-backed connection code pick **bit-for-bit identical** relays
//! (same discovery-order tie-breaks), which the differential oracles
//! in `uavnet-core::verify` rely on.
//! [`ConnectivitySubstrate::shortest_path_into`] additionally offers a
//! table-only path descent for callers that need *some* shortest path
//! without touching the original graph.

use crate::{Graph, Hops};

/// Hop value marking an unreachable pair in the `u16` matrix.
pub const UNREACHABLE_HOPS: u16 = u16::MAX;

/// Why a [`ConnectivitySubstrate`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubstrateError {
    /// The graph has more nodes than the `u16` hop encoding can
    /// address: every finite distance must fit in `u16` with
    /// [`UNREACHABLE_HOPS`] reserved as the no-path sentinel.
    TooManyNodes {
        /// Nodes in the offending graph.
        nodes: usize,
        /// Largest supported node count (`u16::MAX - 1`).
        max: usize,
    },
}

impl std::fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstrateError::TooManyNodes { nodes, max } => {
                write!(f, "substrate supports at most {max} nodes, got {nodes}")
            }
        }
    }
}

impl std::error::Error for SubstrateError {}

/// All-pairs hop distances, components and reachability bitsets of a
/// fixed graph, built once and then queried lock-free from any thread.
///
/// Memory: `2 n²` bytes for the hop matrix plus `n²/8` for the
/// component bitsets — ~26 MB at the paper's `m = 3600` candidate
/// locations, negligible at evaluation scales.
///
/// # Examples
///
/// ```
/// use uavnet_graph::{ConnectivitySubstrate, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
/// let sub = ConnectivitySubstrate::build(&g).expect("graph fits the u16 hop encoding");
/// assert_eq!(sub.hops(0, 2), Some(2));
/// assert_eq!(sub.hops(0, 3), None);
/// assert!(sub.reachable(3, 4));
/// assert_eq!(sub.component_size(0), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ConnectivitySubstrate {
    n: usize,
    /// CSR offsets into `neighbors`; node `u`'s neighbors are
    /// `neighbors[offsets[u]..offsets[u + 1]]`, sorted ascending.
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    /// Row-major `n × n` hop matrix; [`UNREACHABLE_HOPS`] = no path.
    hops: Vec<u16>,
    /// Component id per node (ids are dense, by smallest member).
    component: Vec<u32>,
    /// Nodes per component, indexed by component id.
    component_sizes: Vec<u32>,
    /// One membership bitset per component, each `words_per_row` words.
    component_bits: Vec<u64>,
    words_per_row: usize,
}

impl ConnectivitySubstrate {
    /// Builds the substrate: one BFS per node for the hop matrix, one
    /// labeling pass for components and their bitsets.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::TooManyNodes`] if the graph has `u16::MAX`
    /// nodes or more (hop distances must fit in `u16` with
    /// [`UNREACHABLE_HOPS`] reserved). Checked before any allocation —
    /// a full hop matrix at that scale would be ≥ 8 GB, so the limit
    /// must fail fast instead of attempting the build.
    pub fn build(g: &Graph) -> Result<Self, SubstrateError> {
        let n = g.num_nodes();
        if n >= UNREACHABLE_HOPS as usize {
            return Err(SubstrateError::TooManyNodes {
                nodes: n,
                max: UNREACHABLE_HOPS as usize - 1,
            });
        }
        uavnet_obs::counters::SUBSTRATE_BUILDS.add(1);
        let _span = uavnet_obs::phases::SUBSTRATE_BUILD.span();
        // CSR adjacency with sorted neighbor lists.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut neighbors: Vec<u32> = Vec::new();
        for u in 0..n {
            let start = neighbors.len();
            neighbors.extend(g.neighbors(u).iter().map(|&v| v as u32));
            neighbors[start..].sort_unstable();
            offsets.push(neighbors.len() as u32);
        }

        // Components by BFS over the CSR, labeled by smallest member.
        let mut component = vec![u32::MAX; n];
        let mut component_sizes: Vec<u32> = Vec::new();
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for start in 0..n {
            if component[start] != u32::MAX {
                continue;
            }
            let id = component_sizes.len() as u32;
            component_sizes.push(0);
            component[start] = id;
            queue.push_back(start as u32);
            while let Some(u) = queue.pop_front() {
                component_sizes[id as usize] += 1;
                let (s, e) = (
                    offsets[u as usize] as usize,
                    offsets[u as usize + 1] as usize,
                );
                for &v in &neighbors[s..e] {
                    if component[v as usize] == u32::MAX {
                        component[v as usize] = id;
                        queue.push_back(v);
                    }
                }
            }
        }
        let words_per_row = n.div_ceil(64).max(1);
        let mut component_bits = vec![0u64; component_sizes.len() * words_per_row];
        for (v, &c) in component.iter().enumerate() {
            component_bits[c as usize * words_per_row + v / 64] |= 1u64 << (v % 64);
        }

        // All-pairs hops: one BFS per source over the CSR, writing
        // straight into the row.
        let mut hops = vec![UNREACHABLE_HOPS; n * n];
        let mut bfs_queue: Vec<u32> = Vec::with_capacity(n);
        for src in 0..n {
            let row = &mut hops[src * n..(src + 1) * n];
            row[src] = 0;
            bfs_queue.clear();
            bfs_queue.push(src as u32);
            let mut head = 0usize;
            while head < bfs_queue.len() {
                let u = bfs_queue[head] as usize;
                head += 1;
                let du = row[u];
                let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
                for &v in &neighbors[s..e] {
                    if row[v as usize] == UNREACHABLE_HOPS {
                        row[v as usize] = du + 1;
                        bfs_queue.push(v);
                    }
                }
            }
        }

        let sub = ConnectivitySubstrate {
            n,
            offsets,
            neighbors,
            hops,
            component,
            component_sizes,
            component_bits,
            words_per_row,
        };
        #[cfg(feature = "debug-validate")]
        for u in 0..n {
            let fresh = crate::bfs_hops(g, u);
            for v in 0..n {
                assert_eq!(
                    sub.hops(u, v),
                    fresh[v],
                    "debug-validate: substrate hop ({u}, {v}) diverges from BFS"
                );
            }
        }
        Ok(sub)
    }

    /// Number of nodes of the indexed graph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Hop distance between `u` and `v`, `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn hops(&self, u: usize, v: usize) -> Option<Hops> {
        assert!(u < self.n && v < self.n, "node out of range");
        match self.hops[u * self.n + v] {
            UNREACHABLE_HOPS => None,
            d => Some(Hops::from(d)),
        }
    }

    /// The raw `u16` hop row of `u` ([`UNREACHABLE_HOPS`] = no path),
    /// one entry per node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn hop_row(&self, u: usize) -> &[u16] {
        &self.hops[u * self.n..(u + 1) * self.n]
    }

    /// Whether `u` and `v` share a component (one bit test).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        let row = self.reachability_row(u);
        row[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// The membership bitset of `u`'s component: bit `v` set iff `v`
    /// is reachable from `u` (including `u` itself).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn reachability_row(&self, u: usize) -> &[u64] {
        let c = self.component[u] as usize;
        &self.component_bits[c * self.words_per_row..(c + 1) * self.words_per_row]
    }

    /// Dense component id of `u` (components numbered by smallest
    /// member).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn component_of(&self, u: usize) -> usize {
        self.component[u] as usize
    }

    /// Number of connected components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.component_sizes.len()
    }

    /// Number of nodes in `u`'s component (≥ 1: `u` counts itself).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn component_size(&self, u: usize) -> usize {
        self.component_sizes[self.component[u] as usize] as usize
    }

    /// Sorted neighbor ids of `u` from the CSR copy.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Writes a shortest path `u → … → v` into `out` (cleared first)
    /// and returns `true`, or returns `false` leaving `out` empty when
    /// `v` is unreachable. Pure table descent — no BFS, no access to
    /// the original graph.
    ///
    /// Deterministic: reconstructed backward from `v`, taking the
    /// **smallest-index** CSR neighbor one hop closer to `u` at every
    /// step. Note this tie-break differs from the discovery-order one
    /// of [`crate::shortest_path`]; code that must reproduce the BFS
    /// paths exactly (the relay connection in `uavnet-core`) calls
    /// that function instead.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn shortest_path_into(&self, u: usize, v: usize, out: &mut Vec<usize>) -> bool {
        out.clear();
        assert!(u < self.n && v < self.n, "node out of range");
        let row = self.hop_row(u);
        if row[v] == UNREACHABLE_HOPS {
            return false;
        }
        out.push(v);
        let mut cur = v;
        while cur != u {
            let d = row[cur];
            let prev = self
                .neighbors(cur)
                .iter()
                .map(|&w| w as usize)
                .find(|&w| row[w] + 1 == d)
                .expect("BFS layering guarantees a closer neighbor");
            out.push(prev);
            cur = prev;
        }
        out.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs_hops, connected_components, shortest_path};

    fn grid_graph(cols: usize, rows: usize) -> Graph {
        let mut g = Graph::new(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < rows {
                    g.add_edge(v, v + cols);
                }
            }
        }
        g
    }

    #[test]
    fn hops_match_bfs_everywhere() {
        for g in [
            grid_graph(4, 3),
            Graph::from_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6), (4, 6)]),
            Graph::new(3),
            Graph::new(0),
        ] {
            let sub = ConnectivitySubstrate::build(&g).unwrap();
            for u in 0..g.num_nodes() {
                let fresh = bfs_hops(&g, u);
                for (v, &expected) in fresh.iter().enumerate() {
                    assert_eq!(sub.hops(u, v), expected, "({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn components_and_reachability_agree() {
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (3, 4), (6, 7)]);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        let comps = connected_components(&g);
        assert_eq!(sub.num_components(), comps.len());
        for (id, comp) in comps.iter().enumerate() {
            for &v in comp {
                assert_eq!(sub.component_of(v), id);
                assert_eq!(sub.component_size(v), comp.len());
            }
        }
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(
                    sub.reachable(u, v),
                    sub.hops(u, v).is_some(),
                    "reachable({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn table_paths_are_valid_shortest_paths() {
        let g = grid_graph(5, 4);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        let mut buf = Vec::new();
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                let via_bfs = shortest_path(&g, u, v).expect("grid is connected");
                assert!(sub.shortest_path_into(u, v, &mut buf));
                // Same optimal length as BFS, valid endpoints, and
                // every step a real edge (tie-breaks may differ).
                assert_eq!(buf.len(), via_bfs.len(), "path {u} -> {v}");
                assert_eq!(buf[0], u);
                assert_eq!(*buf.last().unwrap(), v);
                for w in buf.windows(2) {
                    assert!(
                        sub.neighbors(w[0]).contains(&(w[1] as u32)),
                        "non-edge {w:?} on path {u} -> {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_path_is_false_and_empty() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        let mut buf = vec![99];
        assert!(!sub.shortest_path_into(0, 3, &mut buf));
        assert!(buf.is_empty());
        assert!(sub.shortest_path_into(2, 2, &mut buf));
        assert_eq!(buf, vec![2]);
    }

    #[test]
    fn csr_neighbors_are_sorted() {
        let mut g = Graph::new(5);
        g.add_edge(0, 4);
        g.add_edge(0, 2);
        g.add_edge(0, 1);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        assert_eq!(sub.neighbors(0), &[1, 2, 4]);
        assert_eq!(sub.neighbors(3), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_query_rejects_out_of_range() {
        let sub = ConnectivitySubstrate::build(&Graph::new(2)).unwrap();
        let _ = sub.hops(0, 5);
    }

    #[test]
    fn node_limit_boundary() {
        // At and above u16::MAX nodes the build is a typed error, not a
        // panic. Only the error side is exercised at the boundary: the
        // check must reject the graph *before* allocating anything (a
        // hop matrix for the largest legal graph is already ~8.6 GB,
        // far beyond what a test should touch), so an instant failure
        // here also proves the fail-fast ordering.
        let max = UNREACHABLE_HOPS as usize - 1;
        for n in [max + 1, max + 2, max + 1000] {
            assert_eq!(
                ConnectivitySubstrate::build(&Graph::new(n)).unwrap_err(),
                SubstrateError::TooManyNodes { nodes: n, max },
            );
        }
        assert!(
            ConnectivitySubstrate::build(&Graph::new(max + 1))
                .unwrap_err()
                .to_string()
                .contains("at most 65534 nodes"),
            "error message names the documented limit"
        );
    }
}
