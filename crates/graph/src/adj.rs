//! Undirected adjacency-list graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple undirected graph over nodes `0 .. n`.
///
/// Parallel edges and self-loops are rejected, matching the UAV
/// connectivity graphs of the paper (a link either exists or it does
/// not).
///
/// # Examples
///
/// ```
/// use uavnet_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            if !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, `u == v`, or the edge
    /// already exists.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        let n = self.num_nodes();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} nodes");
        assert_ne!(u, v, "self-loop at {u} rejected");
        assert!(!self.has_edge(u, v), "duplicate edge ({u},{v})");
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.num_edges += 1;
    }

    /// Whether the edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Scan the shorter list.
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].contains(&b)
    }

    /// Neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterator over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph with {} nodes, {} edges",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn edges_are_bidirectional() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Graph::new(3);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = Graph::new(3);
        g.add_edge(0, 3);
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 3), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edges_iterator_canonical_order() {
        let g = Graph::from_edges(4, [(3, 1), (0, 2)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn display_mentions_counts() {
        let g = Graph::from_edges(4, [(0, 1)]);
        assert!(g.to_string().contains("4 nodes"));
        assert!(g.to_string().contains("1 edges"));
    }
}
