//! SNR and Shannon-rate computations.

/// Received signal-to-noise ratio in dB:
/// `SNR = P_t + g_t − PL − P_N` (all in dB/dBm).
///
/// # Examples
///
/// ```
/// use uavnet_channel::snr_db;
/// // 30 dBm transmit, 5 dBi gain, 100 dB pathloss, −114 dBm noise.
/// assert_eq!(snr_db(30.0, 5.0, 100.0, -114.0), 49.0);
/// ```
#[inline]
pub fn snr_db(tx_power_dbm: f64, antenna_gain_dbi: f64, pathloss_db: f64, noise_dbm: f64) -> f64 {
    tx_power_dbm + antenna_gain_dbi - pathloss_db - noise_dbm
}

/// Converts an SNR in dB to linear scale (`10^(dB/10)`).
///
/// # Examples
///
/// ```
/// use uavnet_channel::snr_linear_from_db;
/// assert!((snr_linear_from_db(10.0) - 10.0).abs() < 1e-12);
/// assert!((snr_linear_from_db(0.0) - 1.0).abs() < 1e-12);
/// ```
#[inline]
pub fn snr_linear_from_db(snr_db: f64) -> f64 {
    10f64.powf(snr_db / 10.0)
}

/// Shannon capacity `B_w · log2(1 + SNR)` in bit/s over bandwidth
/// `bandwidth_hz`, for a *linear* SNR.
///
/// Negative linear SNRs (impossible physically, possible from sloppy
/// callers) are treated as zero.
///
/// # Examples
///
/// ```
/// use uavnet_channel::shannon_rate_bps;
/// // 180 kHz at SNR 1 (0 dB) gives exactly 180 kbit/s.
/// assert!((shannon_rate_bps(180e3, 1.0) - 180e3).abs() < 1e-6);
/// ```
#[inline]
pub fn shannon_rate_bps(bandwidth_hz: f64, snr_linear: f64) -> f64 {
    bandwidth_hz * (1.0 + snr_linear.max(0.0)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_db_is_linear_in_terms() {
        let base = snr_db(30.0, 5.0, 100.0, -114.0);
        assert_eq!(snr_db(33.0, 5.0, 100.0, -114.0), base + 3.0);
        assert_eq!(snr_db(30.0, 8.0, 100.0, -114.0), base + 3.0);
        assert_eq!(snr_db(30.0, 5.0, 103.0, -114.0), base - 3.0);
        assert_eq!(snr_db(30.0, 5.0, 100.0, -111.0), base - 3.0);
    }

    #[test]
    fn linear_conversion_checkpoints() {
        assert!((snr_linear_from_db(20.0) - 100.0).abs() < 1e-9);
        assert!((snr_linear_from_db(-10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rate_is_monotone_in_snr() {
        let bw = 180e3;
        let mut last = -1.0;
        for snr in [0.0, 0.5, 1.0, 10.0, 1e4] {
            let r = shannon_rate_bps(bw, snr);
            assert!(r > last);
            last = r;
        }
    }

    #[test]
    fn rate_at_zero_snr_is_zero() {
        assert_eq!(shannon_rate_bps(180e3, 0.0), 0.0);
        assert_eq!(shannon_rate_bps(180e3, -5.0), 0.0);
    }

    #[test]
    fn rate_scales_with_bandwidth() {
        let r1 = shannon_rate_bps(100e3, 7.0);
        let r2 = shannon_rate_bps(200e3, 7.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-6);
    }
}
