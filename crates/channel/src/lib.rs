//! Wireless channel models for UAV communication networks (§II-B of the
//! paper).
//!
//! Two channels are modeled:
//!
//! * **UAV-to-user (air-to-ground)** — a probabilistic mixture of
//!   Line-of-Sight and Non-Line-of-Sight links following Al-Hourani et
//!   al., *"Optimal LAP altitude for maximum coverage"* (IEEE WCL 2014):
//!   the mean pathloss is `PL = P_LoS · L_LoS + P_NLoS · L_NLoS`, where
//!   `P_LoS` is an S-curve in the elevation angle and `L_{LoS,NLoS}` add
//!   environment-specific excess losses `η` to the free-space pathloss.
//! * **UAV-to-UAV** — pure free-space pathloss (no obstacles in the air).
//!
//! From the pathloss, the received SNR and the Shannon data rate over an
//! OFDMA sub-band `B_w` are derived, giving the admissibility predicate
//! used by the coverage model: a user can be served iff it is within the
//! UAV's coverage radius **and** its achievable rate meets its minimum
//! requirement `r_min`.
//!
//! # Examples
//!
//! ```
//! use uavnet_channel::{AtgChannel, ChannelParams, Environment, UavRadio};
//! use uavnet_geom::{Point2, Point3};
//!
//! let params = ChannelParams::builder().environment(Environment::Urban).build();
//! let channel = AtgChannel::new(params);
//! let radio = UavRadio::new(30.0, 5.0, 500.0);
//! let uav = Point3::new(0.0, 0.0, 300.0);
//! let user = Point2::new(300.0, 0.0);
//!
//! let rate = channel.data_rate_bps(&radio, uav, user);
//! assert!(rate > 1_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod altitude;
mod link;
mod params;
mod pathloss;
mod rate;

pub use altitude::{coverage_radius_m, optimal_altitude_m};
pub use link::{AtgChannel, UavRadio, UavToUavChannel};
pub use params::{ChannelParams, ChannelParamsBuilder, Environment};
pub use pathloss::{elevation_angle_deg, free_space_pathloss_db, los_probability};
pub use rate::{shannon_rate_bps, snr_db, snr_linear_from_db};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;
