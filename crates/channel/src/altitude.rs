//! Optimal hovering altitude (Al-Hourani et al., 2014).
//!
//! The paper assumes all UAVs hover at the altitude `H_uav` "for the
//! maximum coverage from the sky", computed by the algorithms of its
//! reference [2] (§II-A). This module reproduces that computation: for
//! a maximum tolerable pathloss `PL_max`, the coverage radius
//! `R(h)` — the largest ground distance still within budget — first
//! grows with altitude (higher elevation angles make LoS more likely)
//! and then shrinks (the slant distance dominates), giving a unique
//! optimum.

use crate::{AtgChannel, ChannelParams};
use uavnet_geom::{Point2, Point3};

/// The largest ground (horizontal) distance at which the mean pathloss
/// stays within `max_pathloss_db`, for a UAV at `altitude_m`. Returns
/// 0.0 when even the nadir point exceeds the budget.
///
/// Monotonicity of the mean pathloss in ground distance (at fixed
/// altitude) makes this a clean binary search.
///
/// # Panics
///
/// Panics if `altitude_m` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use uavnet_channel::{coverage_radius_m, ChannelParams};
/// let params = ChannelParams::default();
/// let r_low = coverage_radius_m(&params, 103.0, 100.0);
/// let r_mid = coverage_radius_m(&params, 103.0, 300.0);
/// assert!(r_mid > 0.0 && r_low >= 0.0);
/// ```
pub fn coverage_radius_m(params: &ChannelParams, max_pathloss_db: f64, altitude_m: f64) -> f64 {
    assert!(
        altitude_m.is_finite() && altitude_m > 0.0,
        "altitude must be positive, got {altitude_m}"
    );
    let channel = AtgChannel::new(*params);
    let uav = Point3::new(0.0, 0.0, altitude_m);
    let pl = |r: f64| channel.mean_pathloss_db(uav, Point2::new(r, 0.0));
    if pl(0.0) > max_pathloss_db {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0e6f64);
    if pl(hi) <= max_pathloss_db {
        return hi; // budget never binds within a 1000 km horizon
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if pl(mid) <= max_pathloss_db {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The altitude in `[h_min, h_max]` maximizing the coverage radius for
/// a pathloss budget, with that radius. Grid search plus local
/// refinement over the (unimodal) radius-altitude curve.
///
/// # Panics
///
/// Panics if the range is empty or non-positive.
///
/// # Examples
///
/// ```
/// use uavnet_channel::{optimal_altitude_m, ChannelParams, Environment};
/// let params = ChannelParams::builder().environment(Environment::Urban).build();
/// let (h, r) = optimal_altitude_m(&params, 110.0, (50.0, 2_000.0));
/// assert!(h > 50.0 && h < 2_000.0);
/// assert!(r > 0.0);
/// ```
pub fn optimal_altitude_m(
    params: &ChannelParams,
    max_pathloss_db: f64,
    (h_min, h_max): (f64, f64),
) -> (f64, f64) {
    assert!(
        h_min > 0.0 && h_max > h_min && h_max.is_finite(),
        "invalid altitude range [{h_min}, {h_max}]"
    );
    let radius = |h: f64| coverage_radius_m(params, max_pathloss_db, h);
    // Coarse grid.
    let steps = 64;
    let mut best_h = h_min;
    let mut best_r = radius(h_min);
    for i in 1..=steps {
        let h = h_min + (h_max - h_min) * i as f64 / steps as f64;
        let r = radius(h);
        if r > best_r {
            best_r = r;
            best_h = h;
        }
    }
    // Local ternary refinement around the best grid cell.
    let span = (h_max - h_min) / steps as f64;
    let (mut lo, mut hi) = ((best_h - span).max(h_min), (best_h + span).min(h_max));
    for _ in 0..80 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if radius(m1) < radius(m2) {
            lo = m1;
        } else {
            hi = m2;
        }
    }
    let h = (lo + hi) / 2.0;
    (h, radius(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    fn urban() -> ChannelParams {
        ChannelParams::builder()
            .environment(Environment::Urban)
            .build()
    }

    #[test]
    fn radius_is_zero_when_budget_too_tight() {
        // 60 dB budget cannot even reach the ground from 300 m.
        assert_eq!(coverage_radius_m(&urban(), 60.0, 300.0), 0.0);
    }

    #[test]
    fn radius_grows_with_budget() {
        let p = urban();
        let mut last = 0.0;
        for budget in [95.0, 100.0, 105.0, 110.0] {
            let r = coverage_radius_m(&p, budget, 300.0);
            assert!(r > last, "budget {budget}: {r} <= {last}");
            last = r;
        }
    }

    #[test]
    fn radius_at_budget_edge_matches_pathloss() {
        let p = urban();
        let budget = 105.0;
        let h = 300.0;
        let r = coverage_radius_m(&p, budget, h);
        let channel = AtgChannel::new(p);
        let uav = Point3::new(0.0, 0.0, h);
        let pl = channel.mean_pathloss_db(uav, Point2::new(r, 0.0));
        assert!((pl - budget).abs() < 0.01, "edge pathloss {pl}");
    }

    #[test]
    fn optimum_is_interior_and_beats_extremes() {
        let p = urban();
        let budget = 110.0;
        let (h, r) = optimal_altitude_m(&p, budget, (50.0, 3_000.0));
        assert!(h > 50.0 && h < 3_000.0, "h = {h}");
        let r_low = coverage_radius_m(&p, budget, 51.0);
        let r_high = coverage_radius_m(&p, budget, 2_999.0);
        assert!(r >= r_low, "optimum {r} below low-altitude {r_low}");
        assert!(r >= r_high, "optimum {r} below high-altitude {r_high}");
    }

    #[test]
    fn harsher_environments_want_steeper_elevation() {
        // Al-Hourani et al.: the optimal *elevation angle* at the cell
        // edge grows with environment harshness — highrise cells must
        // be looked down upon much more steeply than suburban ones
        // (the absolute altitude can still be lower because the
        // suburban radius is enormous).
        let budget = 115.0;
        let sub = ChannelParams::builder()
            .environment(Environment::Suburban)
            .build();
        let high = ChannelParams::builder()
            .environment(Environment::Highrise)
            .build();
        let (h_sub, r_sub) = optimal_altitude_m(&sub, budget, (50.0, 5_000.0));
        let (h_high, r_high) = optimal_altitude_m(&high, budget, (50.0, 5_000.0));
        let angle = |h: f64, r: f64| (h / r).atan().to_degrees();
        assert!(
            angle(h_high, r_high) > angle(h_sub, r_sub) + 5.0,
            "highrise edge angle {:.1}° not above suburban {:.1}°",
            angle(h_high, r_high),
            angle(h_sub, r_sub)
        );
        // …and the suburban cell is much larger.
        assert!(r_sub > 2.0 * r_high);
    }

    #[test]
    #[should_panic(expected = "altitude must be positive")]
    fn rejects_bad_altitude() {
        let _ = coverage_radius_m(&urban(), 100.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid altitude range")]
    fn rejects_bad_range() {
        let _ = optimal_altitude_m(&urban(), 100.0, (500.0, 100.0));
    }
}
