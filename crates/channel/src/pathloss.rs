//! Pathloss primitives: free-space loss, elevation angles and the
//! Al-Hourani LoS-probability S-curve.

use crate::SPEED_OF_LIGHT_M_S;

/// Free-space pathloss `20·log10(4π·f_c·d / c)` in dB.
///
/// Distances below one meter are clamped to one meter so the expression
/// stays finite for co-located nodes.
///
/// # Examples
///
/// ```
/// use uavnet_channel::free_space_pathloss_db;
/// // At 2 GHz over 1 km the free-space loss is ≈ 98.5 dB.
/// let pl = free_space_pathloss_db(1_000.0, 2.0e9);
/// assert!((pl - 98.5).abs() < 0.2);
/// ```
#[inline]
pub fn free_space_pathloss_db(distance_m: f64, carrier_hz: f64) -> f64 {
    let d = distance_m.max(1.0);
    20.0 * (4.0 * std::f64::consts::PI * carrier_hz * d / SPEED_OF_LIGHT_M_S).log10()
}

/// Elevation angle in degrees seen from a ground node toward an aerial
/// node at `altitude_m` above it with horizontal offset
/// `horizontal_m ≥ 0`.
///
/// A zero horizontal offset gives 90° (the UAV is directly overhead).
///
/// # Examples
///
/// ```
/// use uavnet_channel::elevation_angle_deg;
/// assert_eq!(elevation_angle_deg(0.0, 300.0), 90.0);
/// assert!((elevation_angle_deg(300.0, 300.0) - 45.0).abs() < 1e-9);
/// ```
#[inline]
pub fn elevation_angle_deg(horizontal_m: f64, altitude_m: f64) -> f64 {
    if horizontal_m <= 0.0 {
        return 90.0;
    }
    (altitude_m / horizontal_m).atan().to_degrees()
}

/// LoS probability `1 / (1 + a·exp(−b·(θ − a)))` for elevation angle `θ`
/// in degrees (Al-Hourani et al., 2014).
///
/// The result is clamped to `[0, 1]` against floating-point drift.
///
/// # Examples
///
/// ```
/// use uavnet_channel::los_probability;
/// // Urban constants: LoS is near-certain straight overhead…
/// let (a, b) = (9.61, 0.16);
/// assert!(los_probability(90.0, a, b) > 0.99);
/// // …and unlikely at grazing angles.
/// assert!(los_probability(1.0, a, b) < 0.35);
/// ```
#[inline]
pub fn los_probability(elevation_deg: f64, a: f64, b: f64) -> f64 {
    let p = 1.0 / (1.0 + a * (-b * (elevation_deg - a)).exp());
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_grows_with_distance_and_frequency() {
        let f = 2.0e9;
        assert!(free_space_pathloss_db(200.0, f) < free_space_pathloss_db(400.0, f));
        assert!(free_space_pathloss_db(200.0, f) < free_space_pathloss_db(200.0, 2.0 * f));
    }

    #[test]
    fn fspl_doubles_distance_adds_6db() {
        let f = 2.0e9;
        let d1 = free_space_pathloss_db(500.0, f);
        let d2 = free_space_pathloss_db(1_000.0, f);
        assert!((d2 - d1 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn fspl_clamps_below_one_meter() {
        let f = 2.0e9;
        assert_eq!(
            free_space_pathloss_db(0.0, f),
            free_space_pathloss_db(1.0, f)
        );
        assert!(free_space_pathloss_db(0.0, f).is_finite());
    }

    #[test]
    fn elevation_overhead_is_90() {
        assert_eq!(elevation_angle_deg(0.0, 100.0), 90.0);
        assert_eq!(elevation_angle_deg(-5.0, 100.0), 90.0);
    }

    #[test]
    fn elevation_decreases_with_horizontal_distance() {
        let mut last = 90.0;
        for h in [10.0, 100.0, 500.0, 2_000.0] {
            let e = elevation_angle_deg(h, 300.0);
            assert!(e < last);
            last = e;
        }
    }

    #[test]
    fn los_probability_monotone_in_elevation() {
        let (a, b) = (9.61, 0.16);
        let mut last = 0.0;
        for theta in [1.0, 10.0, 30.0, 60.0, 90.0] {
            let p = los_probability(theta, a, b);
            assert!(p > last, "θ={theta}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn los_probability_harder_in_highrise() {
        // At the same 30° elevation, highrise terrain has lower LoS odds
        // than suburban terrain.
        let sub = los_probability(30.0, 4.88, 0.43);
        let high = los_probability(30.0, 27.23, 0.08);
        assert!(sub > 0.9);
        assert!(high < 0.6);
    }

    #[test]
    fn los_probability_at_scurve_midpoint() {
        // At θ = a the logistic evaluates to 1/(1+a).
        let (a, b) = (9.61, 0.16);
        let p = los_probability(a, a, b);
        assert!((p - 1.0 / (1.0 + a)).abs() < 1e-12);
    }
}
