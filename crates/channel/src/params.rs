//! Channel parameterization: propagation environments and radio constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Propagation environment classes from Al-Hourani et al. (2014).
///
/// Each class fixes the S-curve constants `(a, b)` of the LoS probability
/// and the mean excess losses `(η_LoS, η_NLoS)` in dB added on top of the
/// free-space pathloss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Open suburban terrain: high LoS probability, low excess loss.
    Suburban,
    /// Typical urban terrain (the paper's disaster-zone setting).
    Urban,
    /// Dense urban terrain.
    DenseUrban,
    /// High-rise urban canyons: lowest LoS probability, highest loss.
    Highrise,
}

impl Environment {
    /// The `(a, b)` constants of the LoS-probability S-curve.
    pub fn s_curve(self) -> (f64, f64) {
        match self {
            Environment::Suburban => (4.88, 0.43),
            Environment::Urban => (9.61, 0.16),
            Environment::DenseUrban => (12.08, 0.11),
            Environment::Highrise => (27.23, 0.08),
        }
    }

    /// The `(η_LoS, η_NLoS)` mean excess losses in dB.
    pub fn excess_loss_db(self) -> (f64, f64) {
        match self {
            Environment::Suburban => (0.1, 21.0),
            Environment::Urban => (1.0, 20.0),
            Environment::DenseUrban => (1.6, 23.0),
            Environment::Highrise => (2.3, 34.0),
        }
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Environment::Suburban => "suburban",
            Environment::Urban => "urban",
            Environment::DenseUrban => "dense-urban",
            Environment::Highrise => "highrise",
        };
        f.write_str(s)
    }
}

/// All scalar constants of the air-to-ground channel model.
///
/// Construct with [`ChannelParams::builder`]; defaults reproduce the
/// evaluation setup of the paper (urban environment, 2 GHz carrier,
/// 180 kHz OFDMA sub-band, −114 dBm noise floor).
///
/// # Examples
///
/// ```
/// use uavnet_channel::{ChannelParams, Environment};
/// let p = ChannelParams::builder()
///     .environment(Environment::Suburban)
///     .carrier_hz(2.4e9)
///     .build();
/// assert_eq!(p.carrier_hz(), 2.4e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    s_curve_a: f64,
    s_curve_b: f64,
    eta_los_db: f64,
    eta_nlos_db: f64,
    carrier_hz: f64,
    noise_dbm: f64,
    bandwidth_hz: f64,
}

impl ChannelParams {
    /// Starts a builder preloaded with the paper's defaults.
    pub fn builder() -> ChannelParamsBuilder {
        ChannelParamsBuilder::default()
    }

    /// LoS S-curve constant `a`.
    #[inline]
    pub fn s_curve_a(&self) -> f64 {
        self.s_curve_a
    }

    /// LoS S-curve constant `b`.
    #[inline]
    pub fn s_curve_b(&self) -> f64 {
        self.s_curve_b
    }

    /// Mean LoS excess loss `η_LoS` in dB.
    #[inline]
    pub fn eta_los_db(&self) -> f64 {
        self.eta_los_db
    }

    /// Mean NLoS excess loss `η_NLoS` in dB.
    #[inline]
    pub fn eta_nlos_db(&self) -> f64 {
        self.eta_nlos_db
    }

    /// Carrier frequency `f_c` in Hz.
    #[inline]
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// Noise power `P_N` in dBm over the sub-band.
    #[inline]
    pub fn noise_dbm(&self) -> f64 {
        self.noise_dbm
    }

    /// Per-user channel bandwidth `B_w` in Hz (e.g. one OFDMA sub-band).
    #[inline]
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams::builder().build()
    }
}

/// Builder for [`ChannelParams`].
#[derive(Debug, Clone)]
pub struct ChannelParamsBuilder {
    environment: Environment,
    s_curve: Option<(f64, f64)>,
    excess: Option<(f64, f64)>,
    carrier_hz: f64,
    noise_dbm: f64,
    bandwidth_hz: f64,
}

impl Default for ChannelParamsBuilder {
    fn default() -> Self {
        ChannelParamsBuilder {
            environment: Environment::Urban,
            s_curve: None,
            excess: None,
            carrier_hz: 2.0e9,
            // Thermal noise over 180 kHz (−174 dBm/Hz + 52.6 dB) plus a
            // 7 dB receiver noise figure.
            noise_dbm: -114.0,
            bandwidth_hz: 180e3,
        }
    }
}

impl ChannelParamsBuilder {
    /// Selects a propagation [`Environment`] (sets the S-curve and excess
    /// losses unless explicitly overridden).
    pub fn environment(&mut self, env: Environment) -> &mut Self {
        self.environment = env;
        self
    }

    /// Overrides the LoS S-curve constants `(a, b)`.
    pub fn s_curve(&mut self, a: f64, b: f64) -> &mut Self {
        self.s_curve = Some((a, b));
        self
    }

    /// Overrides the excess losses `(η_LoS, η_NLoS)` in dB.
    pub fn excess_loss_db(&mut self, los: f64, nlos: f64) -> &mut Self {
        self.excess = Some((los, nlos));
        self
    }

    /// Sets the carrier frequency in Hz.
    pub fn carrier_hz(&mut self, hz: f64) -> &mut Self {
        self.carrier_hz = hz;
        self
    }

    /// Sets the noise power in dBm over the sub-band.
    pub fn noise_dbm(&mut self, dbm: f64) -> &mut Self {
        self.noise_dbm = dbm;
        self
    }

    /// Sets the per-user bandwidth `B_w` in Hz.
    pub fn bandwidth_hz(&mut self, hz: f64) -> &mut Self {
        self.bandwidth_hz = hz;
        self
    }

    /// Finalizes the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the carrier frequency or bandwidth is not strictly
    /// positive and finite (programmer error, not data error).
    pub fn build(&self) -> ChannelParams {
        assert!(
            self.carrier_hz.is_finite() && self.carrier_hz > 0.0,
            "carrier frequency must be positive, got {}",
            self.carrier_hz
        );
        assert!(
            self.bandwidth_hz.is_finite() && self.bandwidth_hz > 0.0,
            "bandwidth must be positive, got {}",
            self.bandwidth_hz
        );
        let (a, b) = self.s_curve.unwrap_or_else(|| self.environment.s_curve());
        let (elos, enlos) = self
            .excess
            .unwrap_or_else(|| self.environment.excess_loss_db());
        ChannelParams {
            s_curve_a: a,
            s_curve_b: b,
            eta_los_db: elos,
            eta_nlos_db: enlos,
            carrier_hz: self.carrier_hz,
            noise_dbm: self.noise_dbm,
            bandwidth_hz: self.bandwidth_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_urban_2ghz() {
        let p = ChannelParams::default();
        assert_eq!(p.s_curve_a(), 9.61);
        assert_eq!(p.s_curve_b(), 0.16);
        assert_eq!(p.carrier_hz(), 2.0e9);
        assert_eq!(p.bandwidth_hz(), 180e3);
    }

    #[test]
    fn environment_tables_are_monotone() {
        // LoS probability parameter `a` grows with urban density
        // (harder environments need higher elevation for LoS).
        let envs = [
            Environment::Suburban,
            Environment::Urban,
            Environment::DenseUrban,
            Environment::Highrise,
        ];
        let mut last_a = 0.0;
        for e in envs {
            let (a, b) = e.s_curve();
            assert!(a > last_a, "{e}: a should increase");
            assert!(b > 0.0);
            last_a = a;
            let (l, n) = e.excess_loss_db();
            assert!(n > l, "{e}: NLoS must lose more than LoS");
        }
    }

    #[test]
    fn builder_overrides_take_precedence() {
        let p = ChannelParams::builder()
            .environment(Environment::Highrise)
            .s_curve(1.0, 2.0)
            .excess_loss_db(3.0, 4.0)
            .noise_dbm(-100.0)
            .build();
        assert_eq!(p.s_curve_a(), 1.0);
        assert_eq!(p.s_curve_b(), 2.0);
        assert_eq!(p.eta_los_db(), 3.0);
        assert_eq!(p.eta_nlos_db(), 4.0);
        assert_eq!(p.noise_dbm(), -100.0);
    }

    #[test]
    #[should_panic(expected = "carrier frequency")]
    fn builder_rejects_bad_carrier() {
        let _ = ChannelParams::builder().carrier_hz(-1.0).build();
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn builder_rejects_bad_bandwidth() {
        let _ = ChannelParams::builder().bandwidth_hz(0.0).build();
    }

    #[test]
    fn display_names() {
        assert_eq!(Environment::Urban.to_string(), "urban");
        assert_eq!(Environment::Highrise.to_string(), "highrise");
    }
}
