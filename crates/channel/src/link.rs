//! End-to-end link models: UAV radios, the air-to-ground channel, and the
//! UAV-to-UAV channel.

use crate::{
    elevation_angle_deg, free_space_pathloss_db, los_probability, shannon_rate_bps, snr_db,
    snr_linear_from_db, ChannelParams,
};
use serde::{Deserialize, Serialize};
use uavnet_geom::{Point2, Point3};

/// The base-station radio mounted on a UAV: transmit power, antenna gain,
/// and the nominal user coverage radius `R_user^k`.
///
/// Heterogeneity across the fleet (the paper's core premise) shows up
/// here: a DJI Matrice 600-class UAV carries a stronger radio (larger
/// `R_user`, higher power) than a Matrice 300-class UAV.
///
/// # Examples
///
/// ```
/// use uavnet_channel::UavRadio;
/// let strong = UavRadio::new(33.0, 6.0, 500.0);
/// let weak = UavRadio::new(27.0, 3.0, 350.0);
/// assert!(strong.user_range_m() > weak.user_range_m());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UavRadio {
    tx_power_dbm: f64,
    antenna_gain_dbi: f64,
    user_range_m: f64,
}

impl UavRadio {
    /// Creates a radio with transmit power `P_t` (dBm), antenna gain
    /// `g_t` (dBi) and user coverage radius `R_user` (m, measured as a
    /// *planar* ground distance per §II-B).
    ///
    /// # Panics
    ///
    /// Panics if `user_range_m` is not strictly positive and finite.
    pub fn new(tx_power_dbm: f64, antenna_gain_dbi: f64, user_range_m: f64) -> Self {
        assert!(
            user_range_m.is_finite() && user_range_m > 0.0,
            "user range must be positive, got {user_range_m}"
        );
        UavRadio {
            tx_power_dbm,
            antenna_gain_dbi,
            user_range_m,
        }
    }

    /// Transmit power `P_t` in dBm.
    #[inline]
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Antenna gain `g_t` in dBi.
    #[inline]
    pub fn antenna_gain_dbi(&self) -> f64 {
        self.antenna_gain_dbi
    }

    /// Planar user coverage radius `R_user` in meters.
    #[inline]
    pub fn user_range_m(&self) -> f64 {
        self.user_range_m
    }
}

/// The air-to-ground channel of §II-B, combining LoS probability and
/// excess losses into a mean pathloss, SNR and data rate.
///
/// # Examples
///
/// ```
/// use uavnet_channel::{AtgChannel, ChannelParams, UavRadio};
/// use uavnet_geom::{Point2, Point3};
///
/// let ch = AtgChannel::new(ChannelParams::default());
/// let radio = UavRadio::new(30.0, 5.0, 500.0);
/// let uav = Point3::new(500.0, 500.0, 300.0);
/// let near = Point2::new(520.0, 500.0);
/// let far = Point2::new(980.0, 500.0);
/// assert!(ch.data_rate_bps(&radio, uav, near) > ch.data_rate_bps(&radio, uav, far));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtgChannel {
    params: ChannelParams,
}

impl AtgChannel {
    /// Creates a channel from its parameters.
    pub fn new(params: ChannelParams) -> Self {
        AtgChannel { params }
    }

    /// The parameters in effect.
    #[inline]
    pub fn params(&self) -> &ChannelParams {
        &self.params
    }

    /// Mean pathloss `PL_{i,j}` (dB) between a UAV at `uav` and a ground
    /// user at `user` (on the `z = 0` plane):
    /// `P_LoS·L_LoS + (1−P_LoS)·L_NLoS`.
    pub fn mean_pathloss_db(&self, uav: Point3, user: Point2) -> f64 {
        let ground = user.at_altitude(0.0);
        let slant = uav.distance(ground);
        let horizontal = uav.horizontal_distance(ground);
        let theta = elevation_angle_deg(horizontal, uav.z);
        let p_los = los_probability(theta, self.params.s_curve_a(), self.params.s_curve_b());
        let fspl = free_space_pathloss_db(slant, self.params.carrier_hz());
        let l_los = fspl + self.params.eta_los_db();
        let l_nlos = fspl + self.params.eta_nlos_db();
        p_los * l_los + (1.0 - p_los) * l_nlos
    }

    /// Received SNR (dB) at `user` from a UAV with `radio` hovering at
    /// `uav`.
    pub fn snr_db(&self, radio: &UavRadio, uav: Point3, user: Point2) -> f64 {
        snr_db(
            radio.tx_power_dbm(),
            radio.antenna_gain_dbi(),
            self.mean_pathloss_db(uav, user),
            self.params.noise_dbm(),
        )
    }

    /// Achievable Shannon rate (bit/s) for `user` over the per-user
    /// sub-band `B_w`.
    pub fn data_rate_bps(&self, radio: &UavRadio, uav: Point3, user: Point2) -> f64 {
        let snr = snr_linear_from_db(self.snr_db(radio, uav, user));
        shannon_rate_bps(self.params.bandwidth_hz(), snr)
    }

    /// Whether `user` can be *served* by a UAV with `radio` at `uav`:
    /// within the planar coverage radius **and** achieving at least
    /// `min_rate_bps`.
    ///
    /// This is the admissibility predicate of constraint (i) in the
    /// problem definition (§II-C).
    pub fn can_serve(
        &self,
        radio: &UavRadio,
        uav: Point3,
        user: Point2,
        min_rate_bps: f64,
    ) -> bool {
        let horizontal = uav.to_plane().distance(user);
        if horizontal > radio.user_range_m() {
            return false;
        }
        self.data_rate_bps(radio, uav, user) >= min_rate_bps
    }
}

impl Default for AtgChannel {
    fn default() -> Self {
        AtgChannel::new(ChannelParams::default())
    }
}

/// The UAV-to-UAV channel: free-space propagation plus a hard
/// communication range `R_uav` (§II-B).
///
/// # Examples
///
/// ```
/// use uavnet_channel::UavToUavChannel;
/// use uavnet_geom::Point3;
///
/// let ch = UavToUavChannel::new(600.0);
/// let a = Point3::new(0.0, 0.0, 300.0);
/// let b = Point3::new(500.0, 0.0, 300.0);
/// let c = Point3::new(700.0, 0.0, 300.0);
/// assert!(ch.connected(a, b));
/// assert!(!ch.connected(a, c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UavToUavChannel {
    range_m: f64,
}

impl UavToUavChannel {
    /// Creates the channel with communication range `R_uav` meters.
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not strictly positive and finite.
    pub fn new(range_m: f64) -> Self {
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "UAV range must be positive, got {range_m}"
        );
        UavToUavChannel { range_m }
    }

    /// Communication range `R_uav` in meters.
    #[inline]
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Whether two hovering UAVs can communicate directly.
    #[inline]
    pub fn connected(&self, a: Point3, b: Point3) -> bool {
        a.distance_sq(b) <= self.range_m * self.range_m
    }

    /// Free-space pathloss between two UAVs at `carrier_hz`.
    pub fn pathloss_db(&self, a: Point3, b: Point3, carrier_hz: f64) -> f64 {
        free_space_pathloss_db(a.distance(b), carrier_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urban() -> AtgChannel {
        AtgChannel::default()
    }

    #[test]
    fn pathloss_grows_with_horizontal_distance() {
        let ch = urban();
        let uav = Point3::new(0.0, 0.0, 300.0);
        let mut last = 0.0;
        for d in [0.0, 100.0, 300.0, 600.0, 1_500.0] {
            let pl = ch.mean_pathloss_db(uav, Point2::new(d, 0.0));
            assert!(pl > last, "d={d}: {pl} vs {last}");
            last = pl;
        }
    }

    #[test]
    fn pathloss_between_los_and_nlos_bounds() {
        let ch = urban();
        let uav = Point3::new(0.0, 0.0, 300.0);
        let user = Point2::new(400.0, 0.0);
        let pl = ch.mean_pathloss_db(uav, user);
        let slant = uav.distance(user.at_altitude(0.0));
        let fspl = free_space_pathloss_db(slant, ch.params().carrier_hz());
        assert!(pl >= fspl + ch.params().eta_los_db());
        assert!(pl <= fspl + ch.params().eta_nlos_db());
    }

    #[test]
    fn overhead_user_is_nearly_pure_los() {
        let ch = urban();
        let uav = Point3::new(0.0, 0.0, 300.0);
        let pl = ch.mean_pathloss_db(uav, Point2::new(0.0, 0.0));
        let fspl = free_space_pathloss_db(300.0, ch.params().carrier_hz());
        // With P_LoS ≈ 1 the mean loss should sit within 0.5 dB of the
        // LoS loss.
        assert!((pl - (fspl + ch.params().eta_los_db())).abs() < 0.5);
    }

    #[test]
    fn rate_positive_at_typical_disaster_geometry() {
        // The paper's setting: H = 300 m, R_user = 500 m, 180 kHz band.
        let ch = urban();
        let radio = UavRadio::new(30.0, 5.0, 500.0);
        let uav = Point3::new(0.0, 0.0, 300.0);
        let edge_user = Point2::new(500.0, 0.0);
        let rate = ch.data_rate_bps(&radio, uav, edge_user);
        // Well above the 2 kbps voice floor of §II-A.
        assert!(rate > 2_000.0, "rate at cell edge = {rate}");
    }

    #[test]
    fn can_serve_enforces_radius() {
        let ch = urban();
        let radio = UavRadio::new(30.0, 5.0, 500.0);
        let uav = Point3::new(0.0, 0.0, 300.0);
        assert!(ch.can_serve(&radio, uav, Point2::new(499.0, 0.0), 2_000.0));
        assert!(!ch.can_serve(&radio, uav, Point2::new(501.0, 0.0), 2_000.0));
    }

    #[test]
    fn can_serve_enforces_rate() {
        let ch = urban();
        // A deliberately feeble radio: −40 dBm transmit power.
        let radio = UavRadio::new(-40.0, 0.0, 500.0);
        let uav = Point3::new(0.0, 0.0, 300.0);
        let user = Point2::new(400.0, 0.0);
        let rate = ch.data_rate_bps(&radio, uav, user);
        assert!(ch.can_serve(&radio, uav, user, rate * 0.9));
        assert!(!ch.can_serve(&radio, uav, user, rate * 1.1));
    }

    #[test]
    fn stronger_radio_gets_better_rate() {
        let ch = urban();
        let weak = UavRadio::new(27.0, 3.0, 350.0);
        let strong = UavRadio::new(33.0, 6.0, 500.0);
        let uav = Point3::new(0.0, 0.0, 300.0);
        let user = Point2::new(200.0, 100.0);
        assert!(ch.data_rate_bps(&strong, uav, user) > ch.data_rate_bps(&weak, uav, user));
    }

    #[test]
    fn uav_channel_range_is_sharp() {
        let ch = UavToUavChannel::new(600.0);
        let a = Point3::new(0.0, 0.0, 300.0);
        assert!(ch.connected(a, Point3::new(600.0, 0.0, 300.0)));
        assert!(!ch.connected(a, Point3::new(600.1, 0.0, 300.0)));
    }

    #[test]
    fn uav_channel_is_symmetric() {
        let ch = UavToUavChannel::new(600.0);
        let a = Point3::new(12.0, 40.0, 300.0);
        let b = Point3::new(520.0, 140.0, 300.0);
        assert_eq!(ch.connected(a, b), ch.connected(b, a));
        assert_eq!(ch.pathloss_db(a, b, 2.0e9), ch.pathloss_db(b, a, 2.0e9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn radio_rejects_bad_range() {
        let _ = UavRadio::new(30.0, 5.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uav_channel_rejects_bad_range() {
        let _ = UavToUavChannel::new(f64::NAN);
    }
}
