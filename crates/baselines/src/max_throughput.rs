//! `maxThroughput` — Xu et al., *"Throughput maximization of UAV
//! networks"* (IEEE/ACM ToN 2022).
//!
//! The original deploys `K` **homogeneous** UAVs (one common capacity)
//! to maximize the sum of user data rates under per-UAV capacities and
//! connectivity, with a `(1−1/e)/√K` guarantee. Our re-implementation
//! keeps its two signature traits:
//!
//! * placement optimizes **throughput** (sum of achievable rates of
//!   newly absorbed users), not the served-user count;
//! * the fleet is treated as homogeneous at the **mean capacity** —
//!   the real heterogeneous capacities only attach afterwards, in
//!   fleet index order, which is precisely the blindness the paper
//!   exploits.

use crate::common::{grow_connected, placements_in_index_order};
use crate::DeploymentAlgorithm;
use uavnet_core::{score_deployment, CoreError, Instance, Solution};

/// The maxThroughput baseline; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxThroughput;

impl DeploymentAlgorithm for MaxThroughput {
    fn name(&self) -> &'static str {
        "maxThroughput"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let k = instance.num_uavs();
        let mean_cap = (instance
            .uavs()
            .iter()
            .map(|u| u64::from(u.capacity))
            .sum::<u64>()
            / k as u64) as usize;
        let mean_cap = mean_cap.max(1);

        // Per-user best achievable rate from a cell, in kbit/s, used as
        // the throughput weight (precompute lazily per query).
        let atg = instance.atg();
        let mut taken = vec![false; instance.num_users()];
        let mut applied = 0usize;
        let locations = grow_connected(instance, k, |chosen, v| {
            while applied < chosen.len() {
                // Replay: the committed pick absorbed its top users.
                let loc = chosen[applied];
                let mut rates = rate_sorted_users(instance, atg, applied, loc, &taken);
                rates.truncate(mean_cap);
                for (_, u) in rates {
                    taken[u as usize] = true;
                }
                applied += 1;
            }
            let uav = chosen.len();
            let rates = rate_sorted_users(instance, atg, uav, v, &taken);
            rates
                .iter()
                .take(mean_cap)
                .map(|&(kbps, _)| kbps)
                .sum::<u64>()
        });
        Ok(score_deployment(
            instance,
            placements_in_index_order(&locations),
        ))
    }
}

/// Unclaimed users coverable by `uav` from `loc`, with their rates in
/// kbit/s, best first.
fn rate_sorted_users(
    instance: &Instance,
    atg: &uavnet_channel::AtgChannel,
    uav: usize,
    loc: usize,
    taken: &[bool],
) -> Vec<(u64, u32)> {
    let hover = instance.grid().hover_position(loc);
    let radio = &instance.uavs()[uav].radio;
    let mut rates: Vec<(u64, u32)> = instance
        .coverable(uav, loc)
        .iter()
        .filter(|&u| !taken[u as usize])
        .map(|u| {
            let rate = atg.data_rate_bps(radio, hover, instance.users()[u as usize].pos);
            ((rate / 1_000.0) as u64, u)
        })
        .collect();
    rates.sort_unstable_by(|a, b| b.cmp(a));
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_200.0, 1_200.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(140.0 + 6.0 * i as f64, 150.0), 2_000.0);
        }
        for i in 0..2 {
            b.add_user(Point2::new(1_040.0 + 6.0 * i as f64, 1_050.0), 2_000.0);
        }
        for cap in [1u32, 6, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_valid_solution() {
        let inst = instance();
        let sol = MaxThroughput.deploy(&inst).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.deployment().len(), 3);
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn is_deterministic() {
        let inst = instance();
        let a = MaxThroughput.deploy(&inst).unwrap();
        let b = MaxThroughput.deploy(&inst).unwrap();
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }

    #[test]
    fn heterogeneity_blindness_can_cost_users() {
        // The capacity-6 UAV is second in index order, so maxThroughput
        // may strand it on a sparse cell. Its served count must never
        // exceed the obvious capacity-aware optimum (6 + 2 = 8).
        let inst = instance();
        let sol = MaxThroughput.deploy(&inst).unwrap();
        assert!(sol.served_users() <= 8);
    }
}
