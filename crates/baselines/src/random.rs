//! A random connected placement — the control every real algorithm
//! should beat.

use crate::common::placements_in_index_order;
use crate::DeploymentAlgorithm;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uavnet_core::{score_deployment, CoreError, Instance, Solution};

/// Deploys the fleet on a uniformly random connected location set
/// (random seeded growth), scored with the optimal assignment.
///
/// # Examples
///
/// ```no_run
/// use uavnet_baselines::{DeploymentAlgorithm, RandomConnected};
/// let algo = RandomConnected::new(42);
/// assert_eq!(algo.name(), "Random");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RandomConnected {
    seed: u64,
}

impl RandomConnected {
    /// Creates the control with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomConnected { seed }
    }
}

impl DeploymentAlgorithm for RandomConnected {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let graph = instance.location_graph();
        let m = instance.num_locations();
        let k = instance.num_uavs();
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut in_set = vec![false; m];
        let mut frontier: Vec<usize> = Vec::new();
        for _ in 0..k {
            let pick = if chosen.is_empty() {
                rng.gen_range(0..m)
            } else if frontier.is_empty() {
                break;
            } else {
                frontier[rng.gen_range(0..frontier.len())]
            };
            chosen.push(pick);
            in_set[pick] = true;
            frontier.retain(|&v| v != pick);
            for &w in graph.neighbors(pick) {
                if !in_set[w] && !frontier.contains(&w) {
                    frontier.push(w);
                }
            }
        }
        Ok(score_deployment(
            instance,
            placements_in_index_order(&chosen),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_200.0, 1_200.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        b.add_user(Point2::new(600.0, 600.0), 2_000.0);
        for _ in 0..4 {
            b.add_uav(2, UavRadio::new(30.0, 5.0, 400.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn valid_and_seed_deterministic() {
        let inst = instance();
        let a = RandomConnected::new(7).deploy(&inst).unwrap();
        let b = RandomConnected::new(7).deploy(&inst).unwrap();
        a.validate(&inst).unwrap();
        assert_eq!(a.deployment().placements(), b.deployment().placements());
        let c = RandomConnected::new(8).deploy(&inst).unwrap();
        c.validate(&inst).unwrap();
    }

    #[test]
    fn deploys_full_fleet_on_open_grid() {
        let inst = instance();
        let sol = RandomConnected::new(3).deploy(&inst).unwrap();
        assert_eq!(sol.deployment().len(), 4);
    }
}
