//! `MCS` — Kuo, Lin & Tsai, *"Maximizing submodular set function with
//! connectivity constraint"* (IEEE/ACM ToN 2015).
//!
//! The original places `K` homogeneous wireless routers to maximize
//! covered users under a connectivity constraint, with a
//! `(1−1/e)/(5(√K+1))` guarantee. Our re-implementation keeps its
//! operative idea — *connected greedy coverage* — and its
//! capacity-obliviousness: marginal gains count distinct newly covered
//! users with no capacity cap, and UAVs are committed in fleet index
//! order.

use crate::common::{grow_connected, placements_in_index_order};
use crate::DeploymentAlgorithm;
use uavnet_core::{score_deployment, CoreError, Instance, Solution};

/// The MCS baseline; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcs;

impl DeploymentAlgorithm for Mcs {
    fn name(&self) -> &'static str {
        "MCS"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let k = instance.num_uavs();
        let mut covered = vec![false; instance.num_users()];
        let mut applied = 0usize; // chosen prefix already folded into `covered`
        let locations = grow_connected(instance, k, |chosen, v| {
            // Fold freshly committed picks into the covered set.
            while applied < chosen.len() {
                for u in instance.coverable(applied, chosen[applied]).iter() {
                    covered[u as usize] = true;
                }
                applied += 1;
            }
            // The UAV that would land here is the next one in index
            // order; its radio decides reach. No capacity cap.
            let uav = chosen.len();
            instance
                .coverable(uav, v)
                .iter()
                .filter(|&u| !covered[u as usize])
                .count() as u64
        });
        Ok(score_deployment(
            instance,
            placements_in_index_order(&locations),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn clustered_instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..5 {
            b.add_user(Point2::new(140.0 + 5.0 * i as f64, 150.0), 2_000.0);
        }
        for i in 0..3 {
            b.add_user(Point2::new(1_340.0 + 5.0 * i as f64, 1_350.0), 2_000.0);
        }
        for cap in [2u32, 5, 1, 3] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_valid_connected_solution() {
        let inst = clustered_instance();
        let sol = Mcs.deploy(&inst).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.deployment().len(), 4);
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn first_uav_lands_on_the_big_cluster() {
        let inst = clustered_instance();
        let sol = Mcs.deploy(&inst).unwrap();
        let (uav0, loc0) = sol.deployment().placements()[0];
        assert_eq!(uav0, 0);
        // Cell 0 holds the 5-user cluster.
        assert_eq!(loc0, 0);
    }

    #[test]
    fn is_deterministic() {
        let inst = clustered_instance();
        let a = Mcs.deploy(&inst).unwrap();
        let b = Mcs.deploy(&inst).unwrap();
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Mcs.name(), "MCS");
    }
}
