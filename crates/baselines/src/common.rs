//! Shared machinery for the baselines: connected greedy growth.

use uavnet_core::Instance;
use uavnet_geom::CellIndex;

/// Grows a connected location set of up to `k` cells: the first pick
/// maximizes `gain` globally, every later pick maximizes `gain` among
/// cells adjacent (in the location graph) to the current set.
///
/// `gain` sees the chosen-so-far prefix and the candidate; ties break
/// toward the smaller cell index, so growth is deterministic. Growth
/// continues through zero-gain candidates (all `k` UAVs are deployed
/// whenever the graph allows), matching how the baseline papers spend
/// their full budget.
pub fn grow_connected(
    instance: &Instance,
    k: usize,
    mut gain: impl FnMut(&[CellIndex], CellIndex) -> u64,
) -> Vec<CellIndex> {
    let graph = instance.location_graph();
    let m = instance.num_locations();
    let mut chosen: Vec<CellIndex> = Vec::with_capacity(k);
    if k == 0 || m == 0 {
        return chosen;
    }
    let mut in_set = vec![false; m];
    let mut adjacent = vec![false; m];
    for _ in 0..k {
        let mut best: Option<(u64, CellIndex)> = None;
        if chosen.is_empty() {
            for v in 0..m {
                let g = gain(&chosen, v);
                if best.is_none_or(|(bg, bv)| g > bg || (g == bg && v < bv)) {
                    best = Some((g, v));
                }
            }
        } else {
            for v in 0..m {
                if in_set[v] || !adjacent[v] {
                    continue;
                }
                let g = gain(&chosen, v);
                if best.is_none_or(|(bg, bv)| g > bg || (g == bg && v < bv)) {
                    best = Some((g, v));
                }
            }
        }
        let Some((_, v)) = best else { break };
        chosen.push(v);
        in_set[v] = true;
        for &w in graph.neighbors(v) {
            adjacent[w] = true;
        }
    }
    chosen
}

/// The fleet in **index order** paired with the grown locations — the
/// heterogeneity-blind placement every baseline uses.
pub fn placements_in_index_order(locations: &[CellIndex]) -> Vec<(usize, CellIndex)> {
    locations.iter().copied().enumerate().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_core::Instance;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};
    use uavnet_graph::is_connected_subset;

    fn instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(1_350.0, 1_350.0), 2_000.0);
        for _ in 0..4 {
            b.add_uav(2, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn growth_is_connected_and_deterministic() {
        let inst = instance();
        let pick = |_: &[usize], v: usize| inst.best_coverage_count(v) as u64;
        let a = grow_connected(&inst, 4, pick);
        let b = grow_connected(&inst, 4, pick);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(is_connected_subset(inst.location_graph(), &a));
        // No duplicates.
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn first_pick_is_global_best() {
        let inst = instance();
        let a = grow_connected(&inst, 1, |_, v| inst.best_coverage_count(v) as u64);
        assert_eq!(a.len(), 1);
        let best = (0..inst.num_locations())
            .max_by_key(|&v| (inst.best_coverage_count(v), std::cmp::Reverse(v)))
            .unwrap();
        assert_eq!(a[0], best);
    }

    #[test]
    fn zero_k() {
        let inst = instance();
        assert!(grow_connected(&inst, 0, |_, _| 0).is_empty());
    }

    #[test]
    fn index_order_placements() {
        let p = placements_in_index_order(&[7, 3, 9]);
        assert_eq!(p, vec![(0, 7), (1, 3), (2, 9)]);
    }
}
