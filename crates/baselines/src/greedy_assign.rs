//! `GreedyAssign` — Khuller, Purohit & Sarpatwar, *"Analyzing the
//! optimal neighborhood: algorithms for partial and budgeted connected
//! dominating set problems"* (SIAM J. Discrete Math 2020).
//!
//! The original scores vertices by how much of the demand neighborhood
//! they dominate, then selects a budgeted connected subgraph
//! maximizing accumulated profit. Our re-implementation follows the
//! paper's two-phase shape:
//!
//! 1. **profit sweep** — repeatedly take the location with the
//!    largest residual coverage, fix its profit to that residual
//!    count, and claim those users (so overlapping locations do not
//!    double-count);
//! 2. **connected selection** — grow a connected `K`-set maximizing
//!    the sum of fixed profits.
//!
//! Capacity-oblivious: profits ignore `C_k`, and UAVs land in fleet
//! index order.

use crate::common::{grow_connected, placements_in_index_order};
use crate::DeploymentAlgorithm;
use uavnet_core::{score_deployment, CoreError, Instance, Solution};

/// The GreedyAssign baseline; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyAssign;

impl GreedyAssign {
    /// The phase-1 static profits (exposed for tests).
    pub(crate) fn profits(instance: &Instance) -> Vec<u64> {
        let m = instance.num_locations();
        // Use the first UAV's radio for the profit geometry — the
        // original problem is homogeneous.
        let mut claimed = vec![false; instance.num_users()];
        let mut profit = vec![0u64; m];
        let mut remaining: Vec<usize> = (0..m).collect();
        while !remaining.is_empty() {
            let (pos, best, residual) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &v)| {
                    let r = instance
                        .coverable(0, v)
                        .iter()
                        .filter(|&u| !claimed[u as usize])
                        .count() as u64;
                    (pos, v, r)
                })
                .max_by(|a, b| a.2.cmp(&b.2).then(b.1.cmp(&a.1)))
                .expect("remaining non-empty");
            profit[best] = residual;
            for u in instance.coverable(0, best).iter() {
                claimed[u as usize] = true;
            }
            remaining.swap_remove(pos);
            if residual == 0 {
                // Every still-unscored location also has residual 0.
                break;
            }
        }
        profit
    }
}

impl DeploymentAlgorithm for GreedyAssign {
    fn name(&self) -> &'static str {
        "GreedyAssign"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let profit = Self::profits(instance);
        let locations = grow_connected(instance, instance.num_uavs(), |_, v| profit[v]);
        Ok(score_deployment(
            instance,
            placements_in_index_order(&locations),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_200.0, 1_200.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..4 {
            b.add_user(Point2::new(140.0 + 5.0 * i as f64, 150.0), 2_000.0);
        }
        b.add_user(Point2::new(1_050.0, 1_050.0), 2_000.0);
        for cap in [1u32, 4, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn profits_do_not_double_count() {
        let inst = instance();
        let profits = GreedyAssign::profits(&inst);
        // Total profit cannot exceed the user count.
        let total: u64 = profits.iter().sum();
        assert!(total <= inst.num_users() as u64);
        // The densest cell carries the cluster's profit.
        assert_eq!(profits.iter().max().copied(), Some(4));
    }

    #[test]
    fn produces_valid_solution() {
        let inst = instance();
        let sol = GreedyAssign.deploy(&inst).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.deployment().len(), 3);
        assert!(sol.served_users() >= 3);
    }

    #[test]
    fn is_deterministic() {
        let inst = instance();
        let a = GreedyAssign.deploy(&inst).unwrap();
        let b = GreedyAssign.deploy(&inst).unwrap();
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }
}
