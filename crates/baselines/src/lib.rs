//! Baseline UAV deployment algorithms — the four comparators of the
//! paper's evaluation (§IV-A) plus a random control.
//!
//! Each baseline re-implements the core placement idea of its source
//! paper (the originals are closed-source; DESIGN.md documents the
//! fidelity of every substitution):
//!
//! * [`Mcs`] — Kuo, Lin & Tsai (ToN'15): connected greedy submodular
//!   coverage, capacity-oblivious;
//! * [`MotionCtrl`] — Zhao, Wang, Wu & Wei (JSAC'18): force-directed
//!   motion control toward uncovered user mass with connectivity
//!   springs;
//! * [`GreedyAssign`] — Khuller, Purohit & Sarpatwar (SIDMA'20):
//!   static residual profits, then a profit-maximizing connected
//!   K-subgraph;
//! * [`MaxThroughput`] — Xu et al. (ToN'22): throughput-greedy
//!   connected placement assuming a *homogeneous* fleet at the mean
//!   capacity;
//! * [`RandomConnected`] — random connected growth (control).
//!
//! All baselines deploy UAVs **in fleet index order** — they are
//! heterogeneity-blind, which is exactly the behavior the paper argues
//! costs them served users — and every produced deployment is scored
//! by the same optimal assignment as `approAlg`
//! ([`uavnet_core::score_deployment`]), so comparisons measure
//! placement quality only.
//!
//! # Examples
//!
//! ```
//! use uavnet_baselines::{DeploymentAlgorithm, Mcs};
//! # use uavnet_core::Instance;
//! # use uavnet_channel::UavRadio;
//! # use uavnet_geom::{AreaSpec, GridSpec, Point2};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0)?, 300.0, 300.0)?.build();
//! # let mut b = Instance::builder(grid, 600.0);
//! # b.add_user(Point2::new(450.0, 450.0), 2_000.0);
//! # b.add_uav(3, UavRadio::new(30.0, 5.0, 500.0));
//! # let instance = b.build()?;
//! let solution = Mcs.deploy(&instance)?;
//! solution.validate(&instance)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod greedy_assign;
mod max_throughput;
mod mcs;
mod motion_ctrl;
mod random;

pub use greedy_assign::GreedyAssign;
pub use max_throughput::MaxThroughput;
pub use mcs::Mcs;
pub use motion_ctrl::MotionCtrl;
pub use random::RandomConnected;

use uavnet_core::{CoreError, Instance, Solution};

/// A deployment algorithm producing a complete, connected solution.
///
/// Implemented by every baseline and by the `approAlg` adapter in the
/// bench harness, so experiments can sweep a uniform list.
pub trait DeploymentAlgorithm {
    /// Short display name used in experiment tables (e.g. `"MCS"`).
    fn name(&self) -> &'static str;

    /// Deploys UAVs on `instance` and returns the scored solution.
    ///
    /// # Errors
    ///
    /// Algorithm-specific failures; all implementations here always
    /// succeed on non-degenerate instances.
    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError>;

    /// [`deploy`](DeploymentAlgorithm::deploy), then — when the
    /// `debug-validate` feature is on — run the result through the
    /// independent feasibility validator and the matching-vs-max-flow
    /// assignment oracle. Without the feature this is exactly
    /// `deploy`; experiments can call it unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates `deploy` errors, plus
    /// [`CoreError::Validation`] / [`CoreError::Verification`] when a
    /// check trips under `debug-validate`.
    fn deploy_verified(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let solution = self.deploy(instance)?;
        #[cfg(feature = "debug-validate")]
        {
            solution.validate(instance)?;
            uavnet_core::check_assignment_oracles(instance, solution.deployment().placements())?;
        }
        Ok(solution)
    }
}
