//! `MotionCtrl` — Zhao, Wang, Wu & Wei, *"Deployment algorithms for
//! UAV airborne networks toward on-demand coverage"* (IEEE JSAC 2018).
//!
//! The original steers UAVs with continuous motion control: each UAV
//! feels an attraction toward uncovered user demand, a separation
//! force from crowded teammates, and a connectivity-preserving spring
//! toward its nearest neighbor. Our re-implementation runs the same
//! force loop in the continuous plane, then snaps the converged swarm
//! onto distinct grid cells and repairs any residual connectivity gap
//! by walking stray UAVs toward the main component (the original keeps
//! connectivity invariant during flight; the repair step plays that
//! role after discretization). Capacity-oblivious throughout.

use crate::common::placements_in_index_order;
use crate::DeploymentAlgorithm;
use uavnet_core::{score_deployment, CoreError, Instance, Solution};
use uavnet_geom::Point2;
use uavnet_graph::{multi_source_hops, UnionFind};

/// The MotionCtrl baseline; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct MotionCtrl {
    /// Force-loop iterations before snapping to the grid.
    pub max_rounds: usize,
    /// Maximum displacement per round, meters.
    pub max_step_m: f64,
}

impl Default for MotionCtrl {
    fn default() -> Self {
        MotionCtrl {
            max_rounds: 80,
            max_step_m: 120.0,
        }
    }
}

impl DeploymentAlgorithm for MotionCtrl {
    fn name(&self) -> &'static str {
        "MotionCtrl"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let k = instance.num_uavs();
        let users = instance.users();
        let area = instance.grid().spec().area();
        let r_uav = instance.uav_channel().range_m();

        // Launch the swarm in a small spiral around the user centroid.
        let centroid = {
            let (sx, sy) = users
                .iter()
                .fold((0.0, 0.0), |(sx, sy), u| (sx + u.pos.x, sy + u.pos.y));
            Point2::new(sx / users.len() as f64, sy / users.len() as f64)
        };
        let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        let mut pos: Vec<Point2> = (0..k)
            .map(|i| {
                let theta = golden * i as f64;
                let radius = 40.0 + 25.0 * i as f64;
                area.clamp(Point2::new(
                    centroid.x + radius * theta.cos(),
                    centroid.y + radius * theta.sin(),
                ))
            })
            .collect();

        for _ in 0..self.max_rounds {
            // Coverage snapshot (capacity-oblivious): a user is covered
            // if any UAV hovers within that UAV's user radius.
            let covered: Vec<bool> = users
                .iter()
                .map(|u| {
                    pos.iter()
                        .enumerate()
                        .any(|(i, p)| p.distance(u.pos) <= instance.uavs()[i].radio.user_range_m())
                })
                .collect();
            let mut next = pos.clone();
            for i in 0..k {
                let r_user = instance.uavs()[i].radio.user_range_m();
                let sense = 2.0 * r_user;
                let mut fx = 0.0;
                let mut fy = 0.0;
                // Attraction toward uncovered demand in sensing range.
                for (u, user) in users.iter().enumerate() {
                    if covered[u] {
                        continue;
                    }
                    let d = pos[i].distance(user.pos);
                    if d > sense || d < 1.0 {
                        continue;
                    }
                    let w = 1.0 / (1.0 + d / r_user);
                    fx += w * (user.pos.x - pos[i].x) / d;
                    fy += w * (user.pos.y - pos[i].y) / d;
                }
                // Separation from crowding teammates.
                for j in 0..k {
                    if j == i {
                        continue;
                    }
                    let d = pos[i].distance(pos[j]);
                    if d < 0.8 * r_user && d > 1.0 {
                        let w = (0.8 * r_user - d) / (0.8 * r_user);
                        fx += 2.0 * w * (pos[i].x - pos[j].x) / d;
                        fy += 2.0 * w * (pos[i].y - pos[j].y) / d;
                    }
                }
                // Connectivity spring toward the nearest teammate when
                // the link stretches.
                if k > 1 {
                    let (j, d) = (0..k)
                        .filter(|&j| j != i)
                        .map(|j| (j, pos[i].distance(pos[j])))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("k > 1");
                    if d > 0.85 * r_uav && d > 1.0 {
                        let w = 4.0 * (d - 0.85 * r_uav) / r_uav;
                        fx += w * (pos[j].x - pos[i].x) / d;
                        fy += w * (pos[j].y - pos[i].y) / d;
                    }
                }
                let norm = (fx * fx + fy * fy).sqrt();
                if norm > 1e-9 {
                    let step = self.max_step_m.min(norm * 40.0);
                    next[i] = area.clamp(Point2::new(
                        pos[i].x + step * fx / norm,
                        pos[i].y + step * fy / norm,
                    ));
                }
            }
            pos = next;
        }

        // Snap to distinct grid cells (nearest free cell, index order).
        let grid = instance.grid();
        let m = instance.num_locations();
        let mut occupied = vec![false; m];
        let mut cells: Vec<usize> = Vec::with_capacity(k);
        for p in &pos {
            let cell = (0..m)
                .filter(|&c| !occupied[c])
                .min_by(|&a, &b| {
                    grid.cell_center(a)
                        .distance(*p)
                        .total_cmp(&grid.cell_center(b).distance(*p))
                })
                .expect("fewer UAVs than cells");
            occupied[cell] = true;
            cells.push(cell);
        }

        repair_connectivity(instance, &mut cells);
        Ok(score_deployment(
            instance,
            placements_in_index_order(&cells),
        ))
    }
}

/// Moves UAVs from minority components onto free cells adjacent to the
/// largest component until the placement is connected.
fn repair_connectivity(instance: &Instance, cells: &mut [usize]) {
    let graph = instance.location_graph();
    let m = instance.num_locations();
    loop {
        // Components of the current placement.
        let mut uf = UnionFind::new(cells.len());
        for i in 0..cells.len() {
            for j in i + 1..cells.len() {
                if graph.has_edge(cells[i], cells[j]) {
                    uf.union(i, j);
                }
            }
        }
        if uf.num_sets() <= 1 {
            return;
        }
        // Anchor = the largest component (ties: the one with UAV 0's
        // lowest index member).
        let roots: Vec<usize> = (0..cells.len()).map(|i| uf.find(i)).collect();
        let anchor_root = (0..cells.len())
            .max_by_key(|&i| (uf.set_size(i), std::cmp::Reverse(roots[i])))
            .map(|i| roots[i])
            .expect("non-empty placement");
        // Pick one stray UAV and walk it to the nearest free cell
        // adjacent to the anchor (BFS layers from the anchor cells).
        let stray = (0..cells.len())
            .find(|&i| roots[i] != anchor_root)
            .expect("num_sets > 1 implies a stray");
        let occupied: Vec<bool> = {
            let mut occ = vec![false; m];
            for (i, &c) in cells.iter().enumerate() {
                if i != stray {
                    occ[c] = true;
                }
            }
            occ
        };
        let anchor_cells = cells
            .iter()
            .enumerate()
            .filter(|&(i, _)| roots[i] == anchor_root)
            .map(|(_, &c)| c);
        let dist = multi_source_hops(graph, anchor_cells);
        // A free cell one hop from the anchor always exists when the
        // anchor has any free neighbor at all (an occupied neighbor
        // would already belong to the anchor component); landing there
        // joins the stray to the anchor and strictly shrinks the
        // number of components.
        let target = (0..m)
            .filter(|&c| !occupied[c] && dist[c] == Some(1))
            .min_by_key(|&c| c);
        match target {
            Some(c) => cells[stray] = c,
            None => return, // isolated anchor: give up gracefully
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_core::Instance;
    use uavnet_geom::{AreaSpec, GridSpec};
    use uavnet_graph::is_connected_subset;

    fn instance(k: usize) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..10 {
            b.add_user(Point2::new(130.0 + 9.0 * i as f64, 150.0), 2_000.0);
        }
        for i in 0..10 {
            b.add_user(Point2::new(1_280.0 + 9.0 * i as f64, 1_350.0), 2_000.0);
        }
        for _ in 0..k {
            b.add_uav(4, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_valid_connected_solution() {
        for k in [1usize, 2, 4, 6] {
            let inst = instance(k);
            let sol = MotionCtrl::default().deploy(&inst).unwrap();
            sol.validate(&inst).unwrap();
            assert_eq!(sol.deployment().len(), k, "k={k}");
        }
    }

    #[test]
    fn is_deterministic() {
        let inst = instance(5);
        let a = MotionCtrl::default().deploy(&inst).unwrap();
        let b = MotionCtrl::default().deploy(&inst).unwrap();
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }

    #[test]
    fn covers_someone_after_convergence() {
        let inst = instance(6);
        let sol = MotionCtrl::default().deploy(&inst).unwrap();
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn repair_reconnects_scattered_cells() {
        let inst = instance(3);
        // Three far-apart cells on the 5×5 grid: 0, 4, 24.
        let mut cells = vec![0usize, 4, 24];
        repair_connectivity(&inst, &mut cells);
        assert!(is_connected_subset(inst.location_graph(), &cells));
        // No duplicates.
        let mut s = cells.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_rounds_still_yields_valid_solution() {
        let inst = instance(4);
        let algo = MotionCtrl {
            max_rounds: 0,
            max_step_m: 100.0,
        };
        let sol = algo.deploy(&inst).unwrap();
        sol.validate(&inst).unwrap();
    }
}
