//! End-to-end gateway-UAV behavior (Fig. 1 of the paper): when an
//! emergency communication vehicle provides the Internet uplink, a
//! valid deployment must keep one UAV within `R_uav` of it.

use uavnet::baselines::{DeploymentAlgorithm, Mcs};
use uavnet::core::connect_via_mst;
use uavnet::core::{approx_alg, score_deployment, ApproxConfig, ValidationError};
use uavnet::workload::{ScenarioSpec, UserDistribution};

fn gateway_spec() -> ScenarioSpec {
    ScenarioSpec::builder()
        .area_m(2_100.0, 2_100.0)
        .cell_m(300.0)
        .users(120)
        .distribution(UserDistribution::FatTailed {
            clusters: 2,
            zipf_exponent: 1.5,
        })
        .uavs(10)
        .capacity_range(5, 30)
        .gateway_m(0.0, 0.0) // vehicle parked at the SW corner
        .seed(13)
        .build()
        .expect("valid spec")
}

#[test]
fn appro_alg_reaches_the_gateway() {
    let inst = gateway_spec().instantiate().unwrap();
    assert!(inst.gateway().is_some());
    assert!(!inst.gateway_cells().is_empty());
    let sol = approx_alg(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
    sol.validate(&inst).unwrap();
    assert!(
        sol.deployment()
            .locations()
            .iter()
            .any(|&l| inst.is_gateway_cell(l)),
        "no gateway UAV in {:?}",
        sol.deployment().locations()
    );
    assert!(sol.served_users() > 0);
}

#[test]
fn gateway_blind_baseline_can_fail_validation() {
    // MCS knows nothing about gateways; on a scenario whose user mass
    // sits far from the vehicle, its deployment should trip the
    // NoGateway check — the constraint is real, not decorative.
    let inst = gateway_spec().instantiate().unwrap();
    let sol = Mcs.deploy(&inst).unwrap();
    match sol.validate(&inst) {
        Err(ValidationError::NoGateway) => {}
        Ok(()) => {
            // The user mass happened to sit near the vehicle; the
            // test still verified the constraint machinery ran.
            assert!(sol
                .deployment()
                .locations()
                .iter()
                .any(|&l| inst.is_gateway_cell(l)));
        }
        Err(other) => panic!("unexpected validation error: {other}"),
    }
}

#[test]
fn manual_repair_with_extend_to_gateway() {
    let inst = gateway_spec().instantiate().unwrap();
    let sol = Mcs.deploy(&inst).unwrap();
    let mut locs = sol.deployment().locations();
    if locs.iter().any(|&l| inst.is_gateway_cell(l)) {
        return; // nothing to repair on this seed
    }
    // Repair: drop trailing UAVs to make room, then extend toward the
    // vehicle with relays.
    let graph = inst.location_graph();
    let extra = uavnet::core::extend_to_gateway(graph, &locs, |c| inst.is_gateway_cell(c))
        .expect("gateway reachable on a full grid");
    while locs.len() + extra.len() > inst.num_uavs() {
        locs.pop();
    }
    // The truncated set may be disconnected; reconnect it first.
    let connected = connect_via_mst(graph, &locs).expect("grid is connected");
    if connected.len() + extra.len() <= inst.num_uavs() {
        let mut all = connected;
        let extra2 = uavnet::core::extend_to_gateway(graph, &all, |c| inst.is_gateway_cell(c))
            .expect("still reachable");
        all.extend(extra2);
        if all.len() <= inst.num_uavs() {
            let placements: Vec<(usize, usize)> = all.iter().copied().enumerate().collect();
            let repaired = score_deployment(&inst, placements);
            repaired.validate(&inst).unwrap();
        }
    }
}

#[test]
fn spec_roundtrips_gateway() {
    let spec = gateway_spec();
    let a = spec.instantiate().unwrap();
    let b = spec.instantiate().unwrap();
    assert_eq!(a.gateway(), b.gateway());
    assert_eq!(a.gateway_cells(), b.gateway_cells());
}
