//! Lemma 1: the assignment subroutine is *optimal* for fixed UAV
//! positions. Cross-checks the incremental matching against the
//! literal max-flow construction and against brute force on tiny
//! instances.

use uavnet::channel::UavRadio;
use uavnet::core::{assign_users, assign_users_max_flow, Instance};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut SmallRng, n: usize, k: usize) -> Instance {
    let grid = GridSpec::new(
        AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
        300.0,
        300.0,
    )
    .unwrap()
    .build();
    let mut b = Instance::builder(grid, 600.0);
    for _ in 0..n {
        b.add_user(
            Point2::new(rng.gen_range(0.0..1_500.0), rng.gen_range(0.0..1_500.0)),
            2_000.0,
        );
    }
    for _ in 0..k {
        b.add_uav(
            rng.gen_range(1..5),
            UavRadio::new(30.0, 5.0, rng.gen_range(300.0..600.0)),
        );
    }
    b.build().unwrap()
}

/// Brute force: maximize served users over all assignments by search
/// with memoization-free recursion (users one by one).
fn brute_force_served(instance: &Instance, placements: &[(usize, usize)]) -> usize {
    fn rec(user: usize, loads: &mut Vec<u32>, coverers: &[Vec<usize>], caps: &[u32]) -> usize {
        if user == coverers.len() {
            return 0;
        }
        // Skip this user.
        let mut best = rec(user + 1, loads, coverers, caps);
        // Or serve it by any placement with room.
        for &pi in &coverers[user] {
            if loads[pi] < caps[pi] {
                loads[pi] += 1;
                best = best.max(1 + rec(user + 1, loads, coverers, caps));
                loads[pi] -= 1;
            }
        }
        best
    }
    let coverers: Vec<Vec<usize>> = (0..instance.num_users())
        .map(|u| {
            placements
                .iter()
                .enumerate()
                .filter(|(_, &(uav, loc))| instance.coverable(uav, loc).contains(u as u32))
                .map(|(pi, _)| pi)
                .collect()
        })
        .collect();
    let caps: Vec<u32> = placements
        .iter()
        .map(|&(uav, _)| instance.uavs()[uav].capacity)
        .collect();
    rec(0, &mut vec![0; placements.len()], &coverers, &caps)
}

#[test]
fn matching_equals_max_flow_on_random_instances() {
    let mut rng = SmallRng::seed_from_u64(2023);
    for round in 0..25 {
        let n = rng.gen_range(5..40);
        let k = rng.gen_range(1..6);
        let instance = random_instance(&mut rng, n, k);
        let m = instance.num_locations();
        let placements: Vec<(usize, usize)> = (0..k)
            .map(|uav| (uav, (uav * 7 + round) % m))
            .filter({
                let mut seen = std::collections::HashSet::new();
                move |&(_, loc)| seen.insert(loc)
            })
            .collect();
        let a = assign_users(&instance, &placements);
        let b = assign_users_max_flow(&instance, &placements);
        assert_eq!(a.served, b.served, "round {round}");
    }
}

#[test]
fn assignment_is_optimal_vs_brute_force() {
    let mut rng = SmallRng::seed_from_u64(77);
    for round in 0..15 {
        let n = rng.gen_range(3..10);
        let k = rng.gen_range(1..4);
        let instance = random_instance(&mut rng, n, k);
        let placements: Vec<(usize, usize)> = (0..k).map(|uav| (uav, uav * 6)).collect();
        let fast = assign_users(&instance, &placements).served;
        let brute = brute_force_served(&instance, &placements);
        assert_eq!(fast, brute, "round {round}: fast {fast} vs brute {brute}");
    }
}

#[test]
fn loads_and_assignment_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(5);
    let instance = random_instance(&mut rng, 30, 4);
    let placements: Vec<(usize, usize)> = vec![(0, 0), (1, 6), (2, 12), (3, 18)];
    let a = assign_users(&instance, &placements);
    // Loads recounted from the assignment vector.
    let mut loads = vec![0u32; placements.len()];
    for pl in a.user_placement.iter().flatten() {
        loads[*pl] += 1;
    }
    assert_eq!(loads, a.loads);
    assert_eq!(loads.iter().sum::<u32>() as usize, a.served);
    // No load exceeds its capacity.
    for (pi, &(uav, _)) in placements.iter().enumerate() {
        assert!(a.loads[pi] <= instance.uavs()[uav].capacity);
    }
}

#[test]
fn more_capacity_never_serves_fewer() {
    // Monotonicity: doubling one UAV's capacity cannot reduce the
    // optimal assignment.
    let mut rng = SmallRng::seed_from_u64(9);
    let grid = GridSpec::new(
        AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
        300.0,
        300.0,
    )
    .unwrap()
    .build();
    let mut users = Vec::new();
    for _ in 0..40 {
        users.push(Point2::new(
            rng.gen_range(0.0..1_500.0),
            rng.gen_range(0.0..1_500.0),
        ));
    }
    let build = |cap0: u32| {
        let mut b = Instance::builder(grid.clone(), 600.0);
        for &p in &users {
            b.add_user(p, 2_000.0);
        }
        b.add_uav(cap0, UavRadio::new(30.0, 5.0, 500.0));
        b.add_uav(3, UavRadio::new(30.0, 5.0, 500.0));
        b.build().unwrap()
    };
    let placements = vec![(0usize, 6usize), (1usize, 12usize)];
    let small = assign_users(&build(4), &placements).served;
    let large = assign_users(&build(8), &placements).served;
    assert!(large >= small);
}
