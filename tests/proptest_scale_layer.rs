//! Property tests over the scale layer: the spatial-index coverage
//! builder against the all-pairs reference, the compressed coverage
//! tables against their decode, the connectivity substrate
//! (precomputed hop rows + canonical paths) against fresh per-call
//! BFS, and the tile-sharded sweep against the monolithic one.

use proptest::collection::vec;
use proptest::prelude::*;

use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg_sharded, approx_alg_with_stats, check_connection_substrate, ApproxConfig, Instance,
    ShardConfig,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};
use uavnet::graph::{
    bfs_hops, connected_components, ConnectivitySubstrate, Graph, UNREACHABLE_HOPS,
};

prop_compose! {
    /// Random small scenario; some draws get a gateway so the
    /// gateway-extension arm of the substrate oracle is exercised.
    fn instances()(
        seed_users in vec((0.0f64..1_500.0, 0.0f64..1_500.0), 1..30),
        caps in vec(1u32..8, 1..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
        gateway in proptest::option::of((0.0f64..1_500.0, 0.0f64..1_500.0)),
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        if let Some((gx, gy)) = gateway {
            b.gateway(Point2::new(gx, gy));
        }
        b.build().expect("valid instance")
    }
}

prop_compose! {
    /// Random sparse-to-dense undirected graph, possibly disconnected.
    fn graphs()(n in 2usize..28)(
        n in Just(n),
        edges in vec((0usize..28, 0usize..28), 0..70),
    ) -> Graph {
        Graph::from_edges(
            n,
            edges
                .into_iter()
                .map(|(u, v)| (u % n, v % n))
                .filter(|&(u, v)| u != v),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole part 1: the grid-binned spatial index must build the
    /// exact coverage tables of the all-pairs scan — same sorted user
    /// ids for every (class, location) pair. Since `coverage_tables`
    /// now decodes the compressed store, this simultaneously pins that
    /// every ids/runs/bitset entry decodes bit-identically to the
    /// brute-force list.
    #[test]
    fn spatial_coverage_tables_match_bruteforce(instance in instances()) {
        let brute = instance.coverage_tables_bruteforce();
        prop_assert_eq!(instance.coverage_tables(), &brute[..]);
        for per_loc in instance.coverage_tables() {
            for users in per_loc {
                prop_assert!(users.windows(2).all(|w| w[0] < w[1]), "unsorted/dup: {users:?}");
            }
        }
        // The compressed store must never report more bytes than the
        // plain Vec<Vec<u32>> layout it replaced, and its per-encoding
        // tallies must account for every list.
        let mem = instance.coverage_memory();
        prop_assert_eq!(mem.lists, mem.ids_lists + mem.run_lists + mem.bitset_lists);
        prop_assert!(
            mem.compressed_bytes <= mem.uncompressed_bytes,
            "compressed {} > uncompressed {}",
            mem.compressed_bytes,
            mem.uncompressed_bytes
        );
    }

    /// Tentpole: the tile-sharded sweep is invariant to tile size and
    /// thread count — deployment, served users and deterministic
    /// statistics all equal the monolithic sweep's.
    #[test]
    fn sharded_sweep_invariant_to_tiling(
        instance in instances(),
        s in 1usize..3,
        tile_cells in 0usize..6,
        threads in 1usize..5,
    ) {
        let s = s.min(instance.num_uavs());
        let config = ApproxConfig::with_s(s).threads(threads);
        let (mono, mono_stats) = approx_alg_with_stats(&instance, &config).unwrap();
        let shard = ShardConfig::new().tile_cells(tile_cells);
        let (sol, stats) = approx_alg_sharded(&instance, &config, &shard).unwrap();
        prop_assert_eq!(sol.deployment(), mono.deployment());
        prop_assert_eq!(sol.served_users(), mono.served_users());
        prop_assert_eq!(stats.gain_queries, mono_stats.gain_queries);
        prop_assert_eq!(stats.subsets_evaluated, mono_stats.subsets_evaluated);
        prop_assert_eq!(stats.subsets_unconnectable, mono_stats.subsets_unconnectable);
        prop_assert_eq!(stats.best_seeds, mono_stats.best_seeds);
    }

    /// The index-backed radius query agrees with a linear scan for
    /// arbitrary centers and radii (including ones unrelated to any
    /// radio class).
    #[test]
    fn users_within_matches_linear_scan(
        instance in instances(),
        cx in -200.0f64..1_700.0,
        cy in -200.0f64..1_700.0,
        r in 0.0f64..900.0,
    ) {
        let center = Point2::new(cx, cy);
        let got = instance.users_within(center, r);
        let r2 = r * r;
        let want: Vec<u32> = instance
            .users()
            .iter()
            .enumerate()
            .filter(|(_, u)| u.pos.distance_sq(center) <= r2)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Tentpole part 2: every substrate hop row equals a fresh BFS
    /// from that node, with `u16::MAX` standing in for `None`, and the
    /// component/reachability structures agree with
    /// [`connected_components`].
    #[test]
    fn substrate_hops_equal_fresh_bfs(g in graphs()) {
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        let mut comp = vec![usize::MAX; g.num_nodes()];
        for (id, members) in connected_components(&g).iter().enumerate() {
            for &v in members {
                comp[v] = id;
            }
        }
        for u in 0..g.num_nodes() {
            let fresh = bfs_hops(&g, u);
            for v in 0..g.num_nodes() {
                let row = sub.hop_row(u)[v];
                let row = (row != UNREACHABLE_HOPS).then_some(u32::from(row));
                prop_assert_eq!(row, fresh[v], "hops {}->{}", u, v);
                prop_assert_eq!(sub.reachable(u, v), comp[u] == comp[v]);
            }
        }
    }

    /// End-to-end connection oracle on real location graphs: substrate
    /// relay selection and gateway extension must be bit-for-bit the
    /// brute-force BFS results (value *and* error cases).
    #[test]
    fn substrate_connection_equals_bruteforce(
        instance in instances(),
        raw_sets in vec(vec(0usize..64, 1..5), 1..4),
    ) {
        let m = instance.num_locations();
        let node_sets: Vec<Vec<usize>> = raw_sets
            .into_iter()
            .map(|s| {
                let mut s: Vec<usize> = s.into_iter().map(|v| v % m).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        check_connection_substrate(&instance, &node_sets).unwrap();
    }
}
