//! Equivalence properties of the streaming subset sweep: on random
//! small scenarios, the streaming enumeration (chunked cursor +
//! per-thread workspaces) must reproduce the materialized reference
//! sweep bit-for-bit — same solution, same statistics — at every
//! thread count.

use proptest::prelude::*;
use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg_materialized, approx_alg_with_stats, ApproxConfig, Instance};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..900.0, 0.0f64..900.0), 1..18),
        caps in proptest::collection::vec(1u32..6, 2..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(900.0, 900.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        b.build().expect("valid instance")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_sweep_matches_materialized_reference(
        instance in instances(),
        s in 1usize..=2,
    ) {
        let s = s.min(instance.num_uavs());
        let config = ApproxConfig::with_s(s).threads(2);
        let (reference_sol, reference_stats) =
            approx_alg_materialized(&instance, &config).unwrap();
        let (sol, stats) = approx_alg_with_stats(&instance, &config).unwrap();

        prop_assert_eq!(
            sol.deployment().placements(),
            reference_sol.deployment().placements()
        );
        prop_assert_eq!(sol.served_users(), reference_sol.served_users());
        prop_assert_eq!(stats.plan, reference_stats.plan);
        prop_assert_eq!(stats.seed_pool_size, reference_stats.seed_pool_size);
        prop_assert_eq!(stats.subsets_enumerated, reference_stats.subsets_enumerated);
        prop_assert_eq!(stats.subsets_chain_pruned, reference_stats.subsets_chain_pruned);
        prop_assert_eq!(stats.subsets_evaluated, reference_stats.subsets_evaluated);
        prop_assert_eq!(stats.subsets_unconnectable, reference_stats.subsets_unconnectable);
        prop_assert_eq!(stats.best_seeds.clone(), reference_stats.best_seeds.clone());
        prop_assert_eq!(stats.gain_queries, reference_stats.gain_queries);
    }

    #[test]
    fn streaming_sweep_is_identical_across_thread_counts(
        instance in instances(),
        s in 1usize..=2,
    ) {
        let s = s.min(instance.num_uavs());
        let mut runs = [1usize, 2, 8].into_iter().map(|threads| {
            approx_alg_with_stats(&instance, &ApproxConfig::with_s(s).threads(threads)).unwrap()
        });
        let (first_sol, first_stats) = runs.next().unwrap();
        for (sol, stats) in runs {
            prop_assert_eq!(
                sol.deployment().placements(),
                first_sol.deployment().placements()
            );
            prop_assert_eq!(sol.served_users(), first_sol.served_users());
            prop_assert_eq!(stats.subsets_enumerated, first_stats.subsets_enumerated);
            prop_assert_eq!(stats.subsets_chain_pruned, first_stats.subsets_chain_pruned);
            prop_assert_eq!(stats.subsets_evaluated, first_stats.subsets_evaluated);
            prop_assert_eq!(stats.subsets_unconnectable, first_stats.subsets_unconnectable);
            prop_assert_eq!(stats.best_seeds.clone(), first_stats.best_seeds.clone());
            prop_assert_eq!(stats.gain_queries, first_stats.gain_queries);
        }
    }
}
