//! Properties of the pluggable seed-search strategies: on random
//! small scenarios, every [`SeedStrategyKind`] must be deterministic
//! and thread-count invariant, the bound-pruned enumeration must
//! reproduce the exhaustive sweep bit-for-bit (its bounds are
//! admissible, so pruning may only skip subsets that cannot win), and
//! the strategy-quality differential oracle must accept every
//! strategy the solver ships.

use proptest::prelude::*;
use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg_with_stats, check_strategy_quality, ApproxConfig, Instance, SeedStrategyKind,
    DEFAULT_BEAM_WIDTH,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..900.0, 0.0f64..900.0), 1..18),
        caps in proptest::collection::vec(1u32..6, 2..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(900.0, 900.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        b.build().expect("valid instance")
    }
}

fn all_strategies() -> [SeedStrategyKind; 3] {
    [
        SeedStrategyKind::Exhaustive,
        SeedStrategyKind::BoundPruned,
        SeedStrategyKind::Beam {
            width: DEFAULT_BEAM_WIDTH,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_strategy_is_identical_across_thread_counts(
        instance in instances(),
        s in 1usize..=2,
    ) {
        let s = s.min(instance.num_uavs());
        for strategy in all_strategies() {
            let mut runs = [1usize, 2, 4].into_iter().map(|threads| {
                let config = ApproxConfig::with_s(s)
                    .threads(threads)
                    .seed_strategy(strategy);
                approx_alg_with_stats(&instance, &config).unwrap()
            });
            let (first_sol, first_stats) = runs.next().unwrap();
            for (sol, stats) in runs {
                prop_assert_eq!(
                    sol.deployment().placements(),
                    first_sol.deployment().placements(),
                    "strategy {} placement depends on thread count",
                    strategy
                );
                prop_assert_eq!(sol.served_users(), first_sol.served_users());
                prop_assert_eq!(stats.subsets_enumerated, first_stats.subsets_enumerated);
                prop_assert_eq!(stats.subsets_chain_pruned, first_stats.subsets_chain_pruned);
                prop_assert_eq!(stats.subsets_bound_pruned, first_stats.subsets_bound_pruned);
                prop_assert_eq!(stats.subsets_evaluated, first_stats.subsets_evaluated);
                prop_assert_eq!(stats.best_seeds.clone(), first_stats.best_seeds.clone());
            }
        }
    }

    #[test]
    fn bound_pruned_matches_exhaustive_bit_for_bit(
        instance in instances(),
        s in 1usize..=2,
        threads in 1usize..=4,
    ) {
        let s = s.min(instance.num_uavs());
        let exhaustive = ApproxConfig::with_s(s).threads(threads);
        let pruned = ApproxConfig::with_s(s)
            .threads(threads)
            .seed_strategy(SeedStrategyKind::BoundPruned);
        let (exh_sol, exh_stats) = approx_alg_with_stats(&instance, &exhaustive).unwrap();
        let (bp_sol, bp_stats) = approx_alg_with_stats(&instance, &pruned).unwrap();

        prop_assert_eq!(
            bp_sol.deployment().placements(),
            exh_sol.deployment().placements()
        );
        prop_assert_eq!(bp_sol.served_users(), exh_sol.served_users());
        prop_assert_eq!(bp_stats.best_seeds.clone(), exh_stats.best_seeds.clone());
        // The pruned sweep sees the same subset universe, and every
        // rank it skips is reclassified (bound-pruned), never lost:
        // the accounting identity covers the whole universe for both.
        // (Per-category equality would be too strong: the saturation
        // early exit counts tail ranks as bound-pruned without running
        // their chain checks.)
        prop_assert_eq!(bp_stats.subsets_enumerated, exh_stats.subsets_enumerated);
        prop_assert_eq!(
            bp_stats.subsets_evaluated
                + bp_stats.subsets_bound_pruned
                + bp_stats.subsets_chain_pruned,
            exh_stats.subsets_evaluated + exh_stats.subsets_chain_pruned
        );
        prop_assert!(bp_stats.subsets_evaluated <= exh_stats.subsets_evaluated);
    }

    #[test]
    fn quality_oracle_accepts_every_shipped_strategy(
        instance in instances(),
        s in 1usize..=2,
    ) {
        let s = s.min(instance.num_uavs());
        let config = ApproxConfig::with_s(s).threads(2);
        check_strategy_quality(&instance, &config).unwrap();
    }
}
