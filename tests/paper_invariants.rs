//! Cross-module invariants lifted straight from the paper's
//! equations: Algorithm 1's plan, Eq. 1's budgets, Eq. 2's relay
//! bound, Theorem 1's closed forms, and the `M2` seed property.

use uavnet::core::{g_upper_bound, g_via_q_sums, h_max, q_budgets, SegmentPlan};
use uavnet::graph::Graph;
use uavnet::matroid::Matroid;

#[test]
fn plans_over_the_paper_parameter_grid() {
    // The evaluation sweeps K = 2..20, s = 1..4 — every combination
    // with s ≤ K must produce a consistent plan.
    for k in 2..=20usize {
        for s in 1..=4usize.min(k) {
            let plan = SegmentPlan::optimal(k, s).unwrap();
            // Plan internals agree with the standalone formulas.
            assert_eq!(plan.p().len(), s + 1);
            assert_eq!(plan.p().iter().sum::<usize>(), plan.l_max() - s);
            assert_eq!(plan.g(), g_upper_bound(plan.p()));
            assert!(plan.g() <= k, "K={k} s={s}");
            assert_eq!(plan.h_max(), h_max(plan.p()));
            let q = plan.budgets();
            assert_eq!(q, q_budgets(plan.l_max(), plan.p()));
            assert_eq!(q[0], plan.l_max());
            // Q_0 − Q_1 = s: only the seeds sit at depth zero.
            if q.len() > 1 {
                assert_eq!(q[0] - q[1], s, "K={k} s={s}: {q:?}");
            }
            // Eq. 2's closed form equals the Σ Q_h derivation (Lemma 2).
            assert_eq!(plan.g(), g_via_q_sums(plan.l_max(), plan.p()));
            // Balancedness claims from §III-D.
            let p = plan.p();
            assert!(p[0].abs_diff(p[s]) <= 1, "outer segments unbalanced: {p:?}");
            if s >= 3 {
                let mids = &p[1..s];
                let (mn, mx) = (mids.iter().min().unwrap(), mids.iter().max().unwrap());
                assert!(mx - mn <= 1, "middle segments unbalanced: {p:?}");
            }
        }
    }
}

#[test]
fn ratio_tracks_theorem_1() {
    for (k, s) in [(10usize, 1usize), (20, 3), (50, 2), (100, 4)] {
        let plan = SegmentPlan::optimal(k, s).unwrap();
        let delta = (2 * k - 2usize).div_ceil(plan.l_max());
        assert_eq!(plan.delta(), delta);
        assert!((plan.approx_ratio() - 1.0 / (3.0 * delta as f64)).abs() < 1e-12);
        // Theorem 1's closed-form L_1 never exceeds the computed L_max.
        assert!(SegmentPlan::theoretical_l1(k, s) <= plan.l_max() as isize);
        // The asymptotic shape: the ratio scales like √(s/K) — check
        // it is within constant factors of √(s/K)/3.
        let asymptotic = (s as f64 / k as f64).sqrt() / 3.0;
        assert!(plan.approx_ratio() >= asymptotic / 4.0, "K={k} s={s}");
        assert!(plan.approx_ratio() <= asymptotic * 4.0, "K={k} s={s}");
    }
}

#[test]
fn seed_matroid_rank_equals_l_max_on_rich_graphs() {
    // On a long path with seeds placed to realize the plan's segment
    // structure, a maximal independent set reaches exactly L_max nodes.
    for (k, s) in [(8usize, 1usize), (12, 2), (20, 3)] {
        let plan = SegmentPlan::optimal(k, s).unwrap();
        let n = 4 * k;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        // Seeds spaced p*_i + 1 apart along the path, starting at p*_1.
        let mut seeds = Vec::with_capacity(s);
        let mut pos = plan.p()[0];
        seeds.push(pos);
        for i in 1..s {
            pos += plan.p()[i] + 1;
            seeds.push(pos);
        }
        let m2 = uavnet::core::seed_matroid(&g, &seeds, &plan);
        // Greedily grow a maximal independent set.
        let mut set: Vec<usize> = Vec::new();
        for v in 0..n {
            if m2.can_extend(&set, v) {
                set.push(v);
            }
        }
        assert_eq!(set.len(), plan.l_max(), "K={k} s={s}: {set:?}");
        for &seed in &seeds {
            assert!(set.contains(&seed), "seed {seed} missing from {set:?}");
        }
    }
}

#[test]
fn fig2d_worked_numbers() {
    // §III-C's running example: s = 3, L = 10, p = (1, 2, 2, 2):
    // h_max = 2, Q_0 = 10, Q_1 = 7, Q_2 = 1.
    let p = [1usize, 2, 2, 2];
    assert_eq!(h_max(&p), 2);
    assert_eq!(q_budgets(10, &p), vec![10, 7, 1]);
}

#[test]
fn runtime_knob_monotonicity() {
    // Fig. 6's premise: growing s buys a better (larger) ratio.
    let k = 20;
    let mut last = 0.0;
    for s in 1..=4 {
        let r = SegmentPlan::optimal(k, s).unwrap().approx_ratio();
        assert!(r >= last, "ratio regressed at s={s}");
        last = r;
    }
}
