//! Regression for re-entrant obs sessions (the long-running-service
//! lifecycle): two *full* recorded sweeps in one process, each closed
//! into its own JSON-lines event log and metrics snapshot, and both
//! logs must pass `scripts/validate_obs_log.py` independently —
//! including the `--single-root` span-tree check, which is exactly
//! what stale thread-local span-parent stacks from the first session
//! used to corrupt.
//!
//! With the `obs` feature off the facade refuses to record and the
//! test degrades to pinning that refusal; CI runs it with
//! `--features obs`.

use std::path::{Path, PathBuf};
use std::process::Command;

use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg_with_stats, ApproxConfig, Instance};
use uavnet::geom::{AreaSpec, GridSpec, Point2};
use uavnet::obs;

fn sweep_instance() -> Instance {
    let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
        .unwrap()
        .build();
    let mut b = Instance::builder(grid, 600.0);
    for i in 0..12 {
        b.add_user(Point2::new(70.0 * i as f64, 450.0), 2_000.0);
    }
    b.add_uav(6, UavRadio::new(30.0, 5.0, 450.0));
    b.add_uav(4, UavRadio::new(28.0, 4.0, 400.0));
    b.build().unwrap()
}

/// One complete recorded sweep: begin (typed), solve under a single
/// root span, end, and write the event log + metrics snapshot.
fn recorded_sweep(instance: &Instance, log_path: &Path, metrics_path: &Path) {
    let mut provenance = obs::Provenance::detect();
    provenance.instance_fingerprint = instance.fingerprint();
    obs::try_session_begin_with(provenance).expect("session must begin cleanly");
    {
        let _root = obs::phases::REPORT.span();
        approx_alg_with_stats(instance, &ApproxConfig::with_s(1).threads(2)).unwrap();
    }
    let snap = obs::session_end().expect("active session yields a snapshot");
    let events = obs::drain_events();
    assert!(!events.is_empty(), "a recorded sweep emits events");
    let mut lines = String::new();
    for e in &events {
        lines.push_str(&e.to_json_line());
        lines.push('\n');
    }
    std::fs::write(log_path, lines).expect("write event log");
    std::fs::write(metrics_path, snap.to_json()).expect("write metrics snapshot");
}

/// Runs `scripts/validate_obs_log.py` on one (log, metrics) pair.
/// Returns `false` (skipping, not failing) when python3 is absent.
fn validate(log_path: &Path, metrics_path: &Path) -> bool {
    let script = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scripts/validate_obs_log.py");
    let out = match Command::new("python3")
        .arg(&script)
        .arg(log_path)
        .arg(metrics_path)
        .arg("--single-root")
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("skipping validate_obs_log.py ({e}); structural asserts still ran");
            return false;
        }
    };
    assert!(
        out.status.success(),
        "validate_obs_log.py rejected {}:\n{}{}",
        log_path.display(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    true
}

#[test]
fn two_recorded_sweeps_in_one_process_both_validate() {
    if !obs::is_enabled() {
        // Facade build: re-entrancy degenerates to repeated refusals.
        assert_eq!(obs::try_session_begin(), Err(obs::SessionError::Disabled));
        assert_eq!(obs::try_session_begin(), Err(obs::SessionError::Disabled));
        return;
    }

    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&tmp).unwrap();
    let instance = sweep_instance();

    let mut snapshots = Vec::new();
    for epoch in 0..2u32 {
        let log = tmp.join(format!("reentrancy_epoch{epoch}.jsonl"));
        let metrics = tmp.join(format!("reentrancy_epoch{epoch}_metrics.json"));
        recorded_sweep(&instance, &log, &metrics);
        let validated = validate(&log, &metrics);
        snapshots.push((log, metrics, validated));
    }

    // Both epochs must have produced identical counter sets (nothing
    // leaked from epoch 0 into epoch 1) — compare the written
    // snapshots, not in-memory state, so the files themselves are the
    // artifact under test.
    let a = std::fs::read_to_string(&snapshots[0].1).unwrap();
    let b = std::fs::read_to_string(&snapshots[1].1).unwrap();
    let counters = |s: &str| s.lines().filter(|l| l.contains("\"counters\"")).count();
    assert_eq!(counters(&a), counters(&b));
    let doc_a = uavnet_json::Json::parse(&a).expect("metrics snapshot is valid JSON");
    let doc_b = uavnet_json::Json::parse(&b).expect("metrics snapshot is valid JSON");
    assert_eq!(
        doc_a.get("counters"),
        doc_b.get("counters"),
        "counters must not leak across sessions"
    );

    // A third session still begins cleanly after two full cycles.
    obs::try_session_begin().expect("third session begins");
    assert_eq!(
        obs::try_session_begin(),
        Err(obs::SessionError::AlreadyActive),
        "double-begin stays typed after re-entry"
    );
    obs::session_end().unwrap();
    obs::drain_events();
}
