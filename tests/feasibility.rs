//! End-to-end feasibility: every algorithm, on every generated
//! scenario, must produce a solution that independently re-validates
//! against all three constraints of §II-C.

use uavnet::baselines::{
    DeploymentAlgorithm, GreedyAssign, MaxThroughput, Mcs, MotionCtrl, RandomConnected,
};
use uavnet::core::{approx_alg, ApproxConfig, Instance};
use uavnet::workload::{ScenarioSpec, UserDistribution};

fn scenarios() -> Vec<Instance> {
    let mut out = Vec::new();
    for (seed, n, k, clusters) in [
        (1u64, 40usize, 3usize, 2usize),
        (2, 80, 5, 4),
        (3, 120, 8, 6),
        (4, 60, 2, 1),
        (5, 100, 10, 3),
    ] {
        let spec = ScenarioSpec::builder()
            .area_m(1_800.0, 1_800.0)
            .cell_m(300.0)
            .users(n)
            .distribution(UserDistribution::FatTailed {
                clusters,
                zipf_exponent: 1.2,
            })
            .uavs(k)
            .capacity_range(4, 30)
            .seed(seed)
            .build()
            .expect("valid spec");
        out.push(spec.instantiate().expect("instantiates"));
    }
    out
}

#[test]
fn every_baseline_validates_on_every_scenario() {
    let algorithms: Vec<Box<dyn DeploymentAlgorithm>> = vec![
        Box::new(Mcs),
        Box::new(GreedyAssign),
        Box::new(MaxThroughput),
        Box::new(MotionCtrl::default()),
        Box::new(RandomConnected::new(9)),
    ];
    for (i, instance) in scenarios().iter().enumerate() {
        for algo in &algorithms {
            let sol = algo
                .deploy(instance)
                .unwrap_or_else(|e| panic!("{} failed on scenario {i}: {e}", algo.name()));
            sol.validate(instance)
                .unwrap_or_else(|e| panic!("{} invalid on scenario {i}: {e}", algo.name()));
        }
    }
}

#[test]
fn approx_validates_for_every_s() {
    for (i, instance) in scenarios().iter().enumerate() {
        for s in 1..=2usize.min(instance.num_uavs()) {
            let sol = approx_alg(instance, &ApproxConfig::with_s(s).threads(1))
                .unwrap_or_else(|e| panic!("approAlg(s={s}) failed on scenario {i}: {e}"));
            sol.validate(instance)
                .unwrap_or_else(|e| panic!("approAlg(s={s}) invalid on scenario {i}: {e}"));
        }
    }
}

#[test]
fn approx_beats_random_in_aggregate() {
    let mut approx_total = 0usize;
    let mut random_total = 0usize;
    for instance in &scenarios() {
        approx_total += approx_alg(instance, &ApproxConfig::with_s(1))
            .unwrap()
            .served_users();
        random_total += RandomConnected::new(123)
            .deploy(instance)
            .unwrap()
            .served_users();
    }
    assert!(
        approx_total > random_total,
        "approAlg total {approx_total} not above random total {random_total}"
    );
}

#[test]
fn paper_literal_configuration_also_validates() {
    // Both prunings and the leftover pass disabled: the algorithm as
    // printed in the paper.
    let instance = &scenarios()[1];
    let config = ApproxConfig::with_s(2)
        .prune_chain(false)
        .prune_empty_seeds(false)
        .leftover_deployment(false)
        .threads(1);
    let sol = approx_alg(instance, &config).unwrap();
    sol.validate(instance).unwrap();
    // The leftover pass applies after the (identical) subset sweep and
    // only ever adds positive-gain UAVs, so enabling it can only help.
    let with_leftovers = approx_alg(
        instance,
        &ApproxConfig::with_s(2)
            .prune_chain(false)
            .prune_empty_seeds(false)
            .threads(1),
    )
    .unwrap();
    assert!(with_leftovers.served_users() >= sol.served_users());
}
