//! Observation must never perturb the solver: on random scenarios,
//! running the sweep inside an active `uavnet-obs` recording session
//! must reproduce the unobserved run bit-for-bit — same placements,
//! same assignment, same deterministic statistics — and the mirrored
//! obs counters must agree with the deterministic stats they were
//! folded from.
//!
//! The suite is meaningful in both builds: with the `obs` feature the
//! session actually records (and the counter cross-checks fire);
//! without it `session_begin` refuses and both runs are trivially
//! unobserved, which pins the no-op facade's API.
//!
//! The observed/unobserved comparisons run single-threaded through one
//! `#[test]` wrapper per property, because the obs session is a global
//! — a concurrently recording test would double-count into it.

use std::collections::HashSet;
use std::sync::Mutex;

use proptest::prelude::*;
use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg_with_stats, ApproxConfig, CoreError, Instance};
use uavnet::geom::{AreaSpec, GridSpec, Point2};
use uavnet::obs;
use uavnet::obs::EventKind;

/// The obs session is process-global; tests in this binary serialize
/// on this lock so a concurrently recording test cannot double-count.
static OBS_LOCK: Mutex<()> = Mutex::new(());

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..900.0, 0.0f64..900.0), 1..14),
        caps in proptest::collection::vec(1u32..6, 2..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(900.0, 900.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        b.build().expect("valid instance")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn observed_sweep_is_bit_identical_to_unobserved(
        instance in instances(),
        s in 1usize..=2,
    ) {
            let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let s = s.min(instance.num_uavs());
            let config = ApproxConfig::with_s(s).threads(2);

            prop_assert!(!obs::session_active(), "leaked session from a prior case");
            let (plain_sol, plain_stats) = approx_alg_with_stats(&instance, &config).unwrap();

            let began = obs::session_begin();
            prop_assert_eq!(began, obs::is_enabled());
            let observed = approx_alg_with_stats(&instance, &config);
            let snap = obs::session_end();
            let events = obs::drain_events();
            let (obs_sol, obs_stats) = observed.unwrap();

            // The solution and every deterministic statistic are
            // unchanged by observation.
            prop_assert_eq!(
                obs_sol.deployment().placements(),
                plain_sol.deployment().placements()
            );
            prop_assert_eq!(obs_sol.served_users(), plain_sol.served_users());
            prop_assert_eq!(&obs_stats.plan, &plain_stats.plan);
            prop_assert_eq!(obs_stats.seed_pool_size, plain_stats.seed_pool_size);
            prop_assert_eq!(obs_stats.subsets_enumerated, plain_stats.subsets_enumerated);
            prop_assert_eq!(obs_stats.subsets_chain_pruned, plain_stats.subsets_chain_pruned);
            prop_assert_eq!(obs_stats.subsets_evaluated, plain_stats.subsets_evaluated);
            prop_assert_eq!(
                obs_stats.subsets_unconnectable,
                plain_stats.subsets_unconnectable
            );
            prop_assert_eq!(&obs_stats.best_seeds, &plain_stats.best_seeds);
            prop_assert_eq!(obs_stats.gain_queries, plain_stats.gain_queries);

            if obs::is_enabled() {
                // The mirrored counters agree with the deterministic
                // stats they were folded from.
                let snap = snap.expect("active session yields a snapshot");
                prop_assert_eq!(snap.counter("sweep.runs"), Some(1));
                prop_assert_eq!(
                    snap.counter("sweep.gain_queries"),
                    Some(obs_stats.gain_queries)
                );
                prop_assert_eq!(
                    snap.counter("sweep.subsets_enumerated"),
                    Some(obs_stats.subsets_enumerated as u64)
                );
                prop_assert_eq!(
                    snap.counter("sweep.subsets_evaluated"),
                    Some(obs_stats.subsets_evaluated as u64)
                );
                prop_assert_eq!(snap.counter("alg1.plans"), Some(1));
                prop_assert_eq!(snap.counter("substrate.builds"), Some(1));
                // The greedy evaluations the obs layer saw directly are
                // exactly the sweep's gain queries.
                prop_assert_eq!(
                    snap.counter("greedy.evaluations"),
                    Some(obs_stats.gain_queries)
                );
                // ... and so are the gain-query latency samples: the
                // histogram never drops a timing under concurrency.
                let gain_hist = snap
                    .hist("greedy.gain_query_ns")
                    .expect("gain-query latency histogram present");
                prop_assert_eq!(gain_hist.count, obs_stats.gain_queries);
                prop_assert!(gain_hist.p50_ns <= gain_hist.p90_ns);
                prop_assert!(gain_hist.p90_ns <= gain_hist.p99_ns);
                prop_assert!(gain_hist.p99_ns <= gain_hist.max_ns);
                // Span events form a forest: unique ids, parents
                // numbered before children (ids are allocated on span
                // entry), every parent reference resolving, and
                // self-time never exceeding wall time.
                let mut span_ids = HashSet::new();
                for e in &events {
                    if let EventKind::Span {
                        id,
                        parent_id,
                        ns,
                        self_ns,
                        ..
                    } = &e.kind
                    {
                        prop_assert!(span_ids.insert(*id), "duplicate span id {}", id);
                        prop_assert!(self_ns <= ns, "self_ns {} > ns {}", self_ns, ns);
                        if let Some(p) = parent_id {
                            prop_assert!(p < id, "parent id {} not before child {}", p, id);
                        }
                    }
                }
                prop_assert!(!span_ids.is_empty(), "an observed sweep emits spans");
                for e in &events {
                    if let EventKind::Span {
                        parent_id: Some(p), ..
                    } = &e.kind
                    {
                        prop_assert!(span_ids.contains(p), "dangling parent id {}", p);
                    }
                }
                // A complete JSON-lines log: session markers, one
                // counter line per declared counter, and a "sweep" run
                // record.
                prop_assert!(events
                    .first()
                    .is_some_and(|e| e.to_json_line().contains("session_start")));
                prop_assert!(events
                    .last()
                    .is_some_and(|e| e.to_json_line().contains("session_end")));
                let runs = events
                    .iter()
                    .filter(|e| e.to_json_line().contains("\"type\":\"run\""))
                    .count();
                prop_assert_eq!(runs, 1);
            } else {
                prop_assert!(snap.is_none());
                prop_assert!(events.is_empty());
            }
    }
}

fn twelve_user_instance() -> Instance {
    let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
        .unwrap()
        .build();
    let mut b = Instance::builder(grid, 600.0);
    for i in 0..12 {
        b.add_user(Point2::new(70.0 * i as f64, 450.0), 2_000.0);
    }
    b.add_uav(6, UavRadio::new(30.0, 5.0, 450.0));
    b.add_uav(4, UavRadio::new(28.0, 4.0, 400.0));
    b.build().unwrap()
}

/// A worker panicking mid-sweep *inside a recording session* must
/// surface as the typed [`CoreError::Sweep`] (not abort, not poison
/// the process-global obs state): the interrupted session still
/// closes into a coherent snapshot and log, and the next session
/// records a clean run as if nothing happened. This is the
/// integration-level twin of the obs crate's poisoned-lock unit
/// tests — lock recovery via `PoisonError::into_inner` is what keeps
/// the facade usable after an unwind.
#[test]
fn worker_panic_yields_typed_error_and_obs_recovers() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let instance = twelve_user_instance();
    let config = ApproxConfig::with_s(1).threads(2).inject_worker_panic_at(0);

    let began = obs::session_begin();
    assert_eq!(began, obs::is_enabled());
    let err = approx_alg_with_stats(&instance, &config).unwrap_err();
    assert!(
        matches!(err, CoreError::Sweep(_)),
        "expected CoreError::Sweep, got {err:?}"
    );
    let snap = obs::session_end();
    let events = obs::drain_events();
    if obs::is_enabled() {
        let snap = snap.expect("interrupted session still snapshots");
        // Work recorded before the panic survives; the aborted sweep
        // was never folded in.
        assert_eq!(snap.counter("alg1.plans"), Some(1));
        assert_eq!(snap.counter("sweep.runs"), Some(0));
        assert!(events
            .last()
            .is_some_and(|e| e.to_json_line().contains("session_end")));
    } else {
        assert!(snap.is_none());
        assert!(events.is_empty());
    }

    // The facade is not wedged: a fresh session records a full run.
    let began = obs::session_begin();
    assert_eq!(began, obs::is_enabled());
    approx_alg_with_stats(&instance, &ApproxConfig::with_s(1).threads(2)).unwrap();
    let snap = obs::session_end();
    obs::drain_events();
    if obs::is_enabled() {
        let snap = snap.expect("clean session snapshots");
        assert_eq!(snap.counter("sweep.runs"), Some(1));
        assert!(snap.counter("sweep.gain_queries").unwrap() > 0);
    }
}

#[test]
fn repeated_sessions_reset_cleanly() {
    // Two identical observed runs in back-to-back sessions must report
    // identical counters: session_begin resets all state.
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let instance = twelve_user_instance();
    let config = ApproxConfig::with_s(1);

    let mut snaps = Vec::new();
    for _ in 0..2 {
        let began = obs::session_begin();
        assert_eq!(began, obs::is_enabled());
        approx_alg_with_stats(&instance, &config).unwrap();
        snaps.push(obs::session_end());
        obs::drain_events();
    }
    if obs::is_enabled() {
        let a = snaps[0].as_ref().unwrap();
        let b = snaps[1].as_ref().unwrap();
        assert_eq!(
            a.counters, b.counters,
            "counters must not leak across sessions"
        );
    } else {
        assert!(snaps.iter().all(Option::is_none));
    }
}
