//! Observation must never perturb the solver: on random scenarios,
//! running the sweep inside an active `uavnet-obs` recording session
//! must reproduce the unobserved run bit-for-bit — same placements,
//! same assignment, same deterministic statistics — and the mirrored
//! obs counters must agree with the deterministic stats they were
//! folded from.
//!
//! The suite is meaningful in both builds: with the `obs` feature the
//! session actually records (and the counter cross-checks fire);
//! without it `session_begin` refuses and both runs are trivially
//! unobserved, which pins the no-op facade's API.
//!
//! The observed/unobserved comparisons run single-threaded through one
//! `#[test]` wrapper per property, because the obs session is a global
//! — a concurrently recording test would double-count into it.

use std::collections::HashSet;
use std::sync::Mutex;

use proptest::prelude::*;
use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg_with_stats, ApproxConfig, CoreError, Delta, Instance, LoopConfig, User,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};
use uavnet::obs;
use uavnet::obs::EventKind;
use uavnet_service::{ClientConfig, ServiceClient, ServiceConfig, SolverService};

/// The obs session is process-global; tests in this binary serialize
/// on this lock so a concurrently recording test cannot double-count.
static OBS_LOCK: Mutex<()> = Mutex::new(());

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..900.0, 0.0f64..900.0), 1..14),
        caps in proptest::collection::vec(1u32..6, 2..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(900.0, 900.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        b.build().expect("valid instance")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn observed_sweep_is_bit_identical_to_unobserved(
        instance in instances(),
        s in 1usize..=2,
    ) {
            let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let s = s.min(instance.num_uavs());
            let config = ApproxConfig::with_s(s).threads(2);

            prop_assert!(!obs::session_active(), "leaked session from a prior case");
            let (plain_sol, plain_stats) = approx_alg_with_stats(&instance, &config).unwrap();

            let began = obs::session_begin();
            prop_assert_eq!(began, obs::is_enabled());
            let observed = approx_alg_with_stats(&instance, &config);
            let snap = obs::session_end();
            let events = obs::drain_events();
            let (obs_sol, obs_stats) = observed.unwrap();

            // The solution and every deterministic statistic are
            // unchanged by observation.
            prop_assert_eq!(
                obs_sol.deployment().placements(),
                plain_sol.deployment().placements()
            );
            prop_assert_eq!(obs_sol.served_users(), plain_sol.served_users());
            prop_assert_eq!(&obs_stats.plan, &plain_stats.plan);
            prop_assert_eq!(obs_stats.seed_pool_size, plain_stats.seed_pool_size);
            prop_assert_eq!(obs_stats.subsets_enumerated, plain_stats.subsets_enumerated);
            prop_assert_eq!(obs_stats.subsets_chain_pruned, plain_stats.subsets_chain_pruned);
            prop_assert_eq!(obs_stats.subsets_evaluated, plain_stats.subsets_evaluated);
            prop_assert_eq!(
                obs_stats.subsets_unconnectable,
                plain_stats.subsets_unconnectable
            );
            prop_assert_eq!(&obs_stats.best_seeds, &plain_stats.best_seeds);
            prop_assert_eq!(obs_stats.gain_queries, plain_stats.gain_queries);

            if obs::is_enabled() {
                // The mirrored counters agree with the deterministic
                // stats they were folded from.
                let snap = snap.expect("active session yields a snapshot");
                prop_assert_eq!(snap.counter("sweep.runs"), Some(1));
                prop_assert_eq!(
                    snap.counter("sweep.gain_queries"),
                    Some(obs_stats.gain_queries)
                );
                prop_assert_eq!(
                    snap.counter("sweep.subsets_enumerated"),
                    Some(obs_stats.subsets_enumerated as u64)
                );
                prop_assert_eq!(
                    snap.counter("sweep.subsets_evaluated"),
                    Some(obs_stats.subsets_evaluated as u64)
                );
                prop_assert_eq!(snap.counter("alg1.plans"), Some(1));
                prop_assert_eq!(snap.counter("substrate.builds"), Some(1));
                // The greedy evaluations the obs layer saw directly are
                // exactly the sweep's gain queries.
                prop_assert_eq!(
                    snap.counter("greedy.evaluations"),
                    Some(obs_stats.gain_queries)
                );
                // ... and so are the gain-query latency samples: the
                // histogram never drops a timing under concurrency.
                let gain_hist = snap
                    .hist("greedy.gain_query_ns")
                    .expect("gain-query latency histogram present");
                prop_assert_eq!(gain_hist.count, obs_stats.gain_queries);
                prop_assert!(gain_hist.p50_ns <= gain_hist.p90_ns);
                prop_assert!(gain_hist.p90_ns <= gain_hist.p99_ns);
                prop_assert!(gain_hist.p99_ns <= gain_hist.max_ns);
                // Span events form a forest: unique ids, parents
                // numbered before children (ids are allocated on span
                // entry), every parent reference resolving, and
                // self-time never exceeding wall time.
                let mut span_ids = HashSet::new();
                for e in &events {
                    if let EventKind::Span {
                        id,
                        parent_id,
                        ns,
                        self_ns,
                        ..
                    } = &e.kind
                    {
                        prop_assert!(span_ids.insert(*id), "duplicate span id {}", id);
                        prop_assert!(self_ns <= ns, "self_ns {} > ns {}", self_ns, ns);
                        if let Some(p) = parent_id {
                            prop_assert!(p < id, "parent id {} not before child {}", p, id);
                        }
                    }
                }
                prop_assert!(!span_ids.is_empty(), "an observed sweep emits spans");
                for e in &events {
                    if let EventKind::Span {
                        parent_id: Some(p), ..
                    } = &e.kind
                    {
                        prop_assert!(span_ids.contains(p), "dangling parent id {}", p);
                    }
                }
                // A complete JSON-lines log: session markers, one
                // counter line per declared counter, and a "sweep" run
                // record.
                prop_assert!(events
                    .first()
                    .is_some_and(|e| e.to_json_line().contains("session_start")));
                prop_assert!(events
                    .last()
                    .is_some_and(|e| e.to_json_line().contains("session_end")));
                let runs = events
                    .iter()
                    .filter(|e| e.to_json_line().contains("\"type\":\"run\""))
                    .count();
                prop_assert_eq!(runs, 1);
            } else {
                prop_assert!(snap.is_none());
                prop_assert!(events.is_empty());
            }
    }
}

/// Fixture for the service-path twin of the bit-identity property:
/// roomy enough that random moves, a kill and a surge all change
/// coverage, small enough that a cold solve stays fast.
fn service_instance() -> Instance {
    let grid = GridSpec::new(
        AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
        300.0,
        300.0,
    )
    .unwrap()
    .build();
    let mut b = Instance::builder(grid, 450.0);
    for i in 0..8 {
        b.add_user(Point2::new(150.0 + 20.0 * i as f64, 150.0), 2_000.0);
    }
    for i in 0..8 {
        b.add_user(Point2::new(1_200.0 + 10.0 * i as f64, 1_200.0), 2_000.0);
    }
    for _ in 0..4 {
        b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
    }
    for _ in 0..2 {
        b.add_uav(6, UavRadio::new(33.0, 6.0, 500.0));
    }
    b.build().unwrap()
}

fn service_loop_config() -> LoopConfig {
    let mut cfg = LoopConfig::new(ApproxConfig::with_s(1));
    cfg.tile_cells = 2;
    cfg
}

/// A randomized delta plan over [`service_instance`]. The kill target
/// is a *slot* into the cold-solve placements, resolved against the
/// seed snapshot at replay time, so the plan never references an
/// unplaced UAV — and resolves identically in both runs because the
/// cold solve is deterministic.
#[derive(Debug, Clone)]
struct DeltaPlan {
    moves_a: Vec<(usize, f64, f64)>,
    kill_slot: usize,
    surge_n: usize,
    moves_b: Vec<(usize, f64, f64)>,
}

prop_compose! {
    fn delta_plans()(
        moves_a in proptest::collection::vec((0usize..16, 0.0f64..1_400.0, 0.0f64..1_400.0), 1..4),
        kill_slot in 0usize..6,
        surge_n in 0usize..3,
        moves_b in proptest::collection::vec((0usize..16, 0.0f64..1_400.0, 0.0f64..1_400.0), 1..4),
    ) -> DeltaPlan {
        DeltaPlan { moves_a, kill_slot, surge_n, moves_b }
    }
}

fn moves_delta(moves: &[(usize, f64, f64)]) -> Delta {
    Delta::UserMoved(
        moves
            .iter()
            .map(|&(i, x, y)| (i as u32, Point2::new(x, y)))
            .collect(),
    )
}

/// `(epoch, placements, served)` observed after each applied delta.
type ServiceObservations = Vec<(u64, Vec<(usize, usize)>, usize)>;

/// Replay `plan` through a spawned [`SolverService`], returning the
/// post-delta observations and the final summary.
fn run_service_plan(
    plan: &DeltaPlan,
    record: bool,
) -> (ServiceObservations, uavnet_service::ServiceSummary) {
    let config = ServiceConfig {
        record_obs: record,
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(service_instance(), service_loop_config(), config)
        .expect("spawn service");
    let mut publisher =
        ServiceClient::connect(handle.addr(), ClientConfig::default()).expect("connect");

    let seed = publisher.snapshot().expect("seed snapshot");
    let kill = seed.placements[plan.kill_slot % seed.placements.len()].0;
    let mut deltas = vec![moves_delta(&plan.moves_a), Delta::KillUavs(vec![kill])];
    if plan.surge_n > 0 {
        deltas.push(Delta::UserSurge(
            (0..plan.surge_n)
                .map(|i| User {
                    pos: Point2::new(300.0 + 40.0 * i as f64, 200.0),
                    min_rate_bps: 2_000.0,
                })
                .collect(),
        ));
    }
    deltas.push(moves_delta(&plan.moves_b));

    let mut observed = Vec::with_capacity(deltas.len());
    for delta in &deltas {
        publisher.publish(delta).expect("publish");
        let snap = publisher.snapshot().expect("snapshot");
        observed.push((snap.epoch, snap.placements, snap.served));
    }
    let summary = handle.shutdown_and_join().expect("shutdown");
    (observed, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Service-path twin of
    /// [`observed_sweep_is_bit_identical_to_unobserved`]: streaming
    /// the same delta plan through the TCP boundary with and without
    /// a recording obs session must produce bit-identical epochs,
    /// placements, served counts and cumulative solver stats — the
    /// whole tracing tentpole (spans, gauges, queue-wait histograms)
    /// is observation-only.
    #[test]
    fn observed_service_stream_is_bit_identical_to_unobserved(plan in delta_plans()) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        prop_assert!(!obs::session_active(), "leaked session from a prior case");
        obs::drain_events();

        let (plain_obs, plain_summary) = run_service_plan(&plan, false);
        // Mirror the loopback suite: ask for recording only when the
        // obs feature can honor it, so the non-obs build still pins
        // the service path end to end.
        let (rec_obs, rec_summary) = run_service_plan(&plan, obs::is_enabled());
        let events = obs::drain_events();

        prop_assert_eq!(&rec_obs, &plain_obs);
        prop_assert_eq!(rec_summary.epochs, plain_summary.epochs);
        prop_assert_eq!(rec_summary.served, plain_summary.served);
        prop_assert_eq!(&rec_summary.placements, &plain_summary.placements);
        prop_assert_eq!(&rec_summary.stats, &plain_summary.stats);
        prop_assert!(rec_summary.worker_panic.is_none());
        prop_assert!(plain_summary.metrics.is_none());

        if obs::is_enabled() {
            let metrics = rec_summary
                .metrics
                .as_ref()
                .expect("recorded service run snapshots");
            prop_assert_eq!(
                metrics.counter("service.deltas_applied"),
                Some(rec_summary.epochs)
            );
            let queue_wait = metrics
                .phase("service.queue_wait")
                .expect("queue-wait phase recorded");
            prop_assert_eq!(queue_wait.count, rec_summary.epochs);
            prop_assert!(!events.is_empty(), "recorded run emits events");
        } else {
            prop_assert!(rec_summary.metrics.is_none());
            prop_assert!(events.is_empty());
        }
    }
}

fn twelve_user_instance() -> Instance {
    let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
        .unwrap()
        .build();
    let mut b = Instance::builder(grid, 600.0);
    for i in 0..12 {
        b.add_user(Point2::new(70.0 * i as f64, 450.0), 2_000.0);
    }
    b.add_uav(6, UavRadio::new(30.0, 5.0, 450.0));
    b.add_uav(4, UavRadio::new(28.0, 4.0, 400.0));
    b.build().unwrap()
}

/// A worker panicking mid-sweep *inside a recording session* must
/// surface as the typed [`CoreError::Sweep`] (not abort, not poison
/// the process-global obs state): the interrupted session still
/// closes into a coherent snapshot and log, and the next session
/// records a clean run as if nothing happened. This is the
/// integration-level twin of the obs crate's poisoned-lock unit
/// tests — lock recovery via `PoisonError::into_inner` is what keeps
/// the facade usable after an unwind.
#[test]
fn worker_panic_yields_typed_error_and_obs_recovers() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let instance = twelve_user_instance();
    let config = ApproxConfig::with_s(1).threads(2).inject_worker_panic_at(0);

    let began = obs::session_begin();
    assert_eq!(began, obs::is_enabled());
    let err = approx_alg_with_stats(&instance, &config).unwrap_err();
    assert!(
        matches!(err, CoreError::Sweep(_)),
        "expected CoreError::Sweep, got {err:?}"
    );
    let snap = obs::session_end();
    let events = obs::drain_events();
    if obs::is_enabled() {
        let snap = snap.expect("interrupted session still snapshots");
        // Work recorded before the panic survives; the aborted sweep
        // was never folded in.
        assert_eq!(snap.counter("alg1.plans"), Some(1));
        assert_eq!(snap.counter("sweep.runs"), Some(0));
        assert!(events
            .last()
            .is_some_and(|e| e.to_json_line().contains("session_end")));
    } else {
        assert!(snap.is_none());
        assert!(events.is_empty());
    }

    // The facade is not wedged: a fresh session records a full run.
    let began = obs::session_begin();
    assert_eq!(began, obs::is_enabled());
    approx_alg_with_stats(&instance, &ApproxConfig::with_s(1).threads(2)).unwrap();
    let snap = obs::session_end();
    obs::drain_events();
    if obs::is_enabled() {
        let snap = snap.expect("clean session snapshots");
        assert_eq!(snap.counter("sweep.runs"), Some(1));
        assert!(snap.counter("sweep.gain_queries").unwrap() > 0);
    }
}

#[test]
fn repeated_sessions_reset_cleanly() {
    // Two identical observed runs in back-to-back sessions must report
    // identical counters: session_begin resets all state.
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let instance = twelve_user_instance();
    let config = ApproxConfig::with_s(1);

    let mut snaps = Vec::new();
    for _ in 0..2 {
        let began = obs::session_begin();
        assert_eq!(began, obs::is_enabled());
        approx_alg_with_stats(&instance, &config).unwrap();
        snaps.push(obs::session_end());
        obs::drain_events();
    }
    if obs::is_enabled() {
        let a = snaps[0].as_ref().unwrap();
        let b = snaps[1].as_ref().unwrap();
        assert_eq!(
            a.counters, b.counters,
            "counters must not leak across sessions"
        );
    } else {
        assert!(snaps.iter().all(Option::is_none));
    }
}
