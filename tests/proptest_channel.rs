//! Property tests for the wireless channel models (§II-B).

use proptest::prelude::*;
use uavnet::channel::{
    coverage_radius_m, elevation_angle_deg, free_space_pathloss_db, los_probability,
    shannon_rate_bps, snr_linear_from_db, AtgChannel, ChannelParams, Environment, UavRadio,
};
use uavnet::geom::{Point2, Point3};

fn environments() -> impl Strategy<Value = Environment> {
    prop_oneof![
        Just(Environment::Suburban),
        Just(Environment::Urban),
        Just(Environment::DenseUrban),
        Just(Environment::Highrise),
    ]
}

proptest! {
    #[test]
    fn los_probability_stays_in_unit_interval(
        theta in 0.0f64..90.0,
        env in environments(),
    ) {
        let (a, b) = env.s_curve();
        let p = los_probability(theta, a, b);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn los_probability_monotone_in_elevation(
        theta in 0.0f64..89.0,
        delta in 0.01f64..1.0,
        env in environments(),
    ) {
        let (a, b) = env.s_curve();
        prop_assert!(los_probability(theta + delta, a, b) >= los_probability(theta, a, b));
    }

    #[test]
    fn fspl_monotone_in_distance(
        d in 1.0f64..50_000.0,
        delta in 0.1f64..1_000.0,
        fc in 0.5e9f64..6.0e9,
    ) {
        prop_assert!(free_space_pathloss_db(d + delta, fc) > free_space_pathloss_db(d, fc));
    }

    #[test]
    fn mean_pathloss_monotone_in_ground_distance(
        d in 0.0f64..5_000.0,
        delta in 1.0f64..500.0,
        altitude in 50.0f64..1_000.0,
        env in environments(),
    ) {
        let params = ChannelParams::builder().environment(env).build();
        let ch = AtgChannel::new(params);
        let uav = Point3::new(0.0, 0.0, altitude);
        let near = ch.mean_pathloss_db(uav, Point2::new(d, 0.0));
        let far = ch.mean_pathloss_db(uav, Point2::new(d + delta, 0.0));
        prop_assert!(far >= near - 1e-9, "PL({d}) = {near} > PL({}) = {far}", d + delta);
    }

    #[test]
    fn rate_decreases_with_distance_and_is_positive(
        d in 0.0f64..3_000.0,
        delta in 1.0f64..500.0,
        altitude in 100.0f64..800.0,
    ) {
        let ch = AtgChannel::default();
        let radio = UavRadio::new(30.0, 5.0, 10_000.0);
        let uav = Point3::new(0.0, 0.0, altitude);
        let near = ch.data_rate_bps(&radio, uav, Point2::new(d, 0.0));
        let far = ch.data_rate_bps(&radio, uav, Point2::new(d + delta, 0.0));
        prop_assert!(near >= far - 1e-9);
        prop_assert!(far > 0.0);
    }

    #[test]
    fn coverage_radius_consistent_with_pathloss(
        budget in 90.0f64..130.0,
        altitude in 100.0f64..600.0,
    ) {
        let params = ChannelParams::default();
        let r = coverage_radius_m(&params, budget, altitude);
        prop_assume!(r > 0.0 && r < 0.9e6);
        let ch = AtgChannel::new(params);
        let uav = Point3::new(0.0, 0.0, altitude);
        // Just inside the radius the budget holds; just outside it fails.
        let inside = ch.mean_pathloss_db(uav, Point2::new((r - 1.0).max(0.0), 0.0));
        let outside = ch.mean_pathloss_db(uav, Point2::new(r + 1.0, 0.0));
        prop_assert!(inside <= budget + 0.01);
        prop_assert!(outside >= budget - 0.01);
    }

    #[test]
    fn elevation_angle_bounds(h in 0.0f64..10_000.0, alt in 1.0f64..2_000.0) {
        let e = elevation_angle_deg(h, alt);
        prop_assert!((0.0..=90.0).contains(&e));
    }

    #[test]
    fn snr_and_rate_roundtrip_sanity(snr_db in -50.0f64..80.0) {
        let lin = snr_linear_from_db(snr_db);
        prop_assert!(lin > 0.0);
        let rate = shannon_rate_bps(180e3, lin);
        prop_assert!(rate >= 0.0);
        // 3 dB more SNR never lowers the rate.
        let rate_up = shannon_rate_bps(180e3, snr_linear_from_db(snr_db + 3.0));
        prop_assert!(rate_up > rate);
    }

    #[test]
    fn can_serve_is_consistent_with_its_parts(
        x in -600.0f64..600.0,
        y in -600.0f64..600.0,
        range in 100.0f64..800.0,
        min_rate in 1_000.0f64..1e6,
    ) {
        let ch = AtgChannel::default();
        let radio = UavRadio::new(30.0, 5.0, range);
        let uav = Point3::new(0.0, 0.0, 300.0);
        let user = Point2::new(x, y);
        let served = ch.can_serve(&radio, uav, user, min_rate);
        let in_range = user.distance(Point2::ORIGIN) <= range;
        let rate_ok = ch.data_rate_bps(&radio, uav, user) >= min_rate;
        prop_assert_eq!(served, in_range && rate_ok);
    }
}
