//! Property-based tests over the substrate crates: flows, matchings,
//! matroids, MSTs and hop metrics.

use proptest::collection::vec;
use proptest::prelude::*;

use uavnet::flow::{CapacitatedMatching, FlowNetwork};
use uavnet::graph::{bfs_hops, hop_distance, prim_mst, Graph, UnionFind};
use uavnet::matroid::{check_axioms_exhaustive, Matroid, NestedFamilyMatroid, PartitionMatroid};

/// Builds the assignment flow network and returns its max flow.
fn flow_value(num_users: usize, stations: &[(u32, Vec<u32>)]) -> i64 {
    let k = stations.len();
    let source = 0;
    let sink = 1 + num_users + k;
    let mut net = FlowNetwork::new(sink + 1);
    for u in 0..num_users {
        net.add_arc(source, 1 + u, 1);
    }
    for (i, (cap, users)) in stations.iter().enumerate() {
        let st = 1 + num_users + i;
        for &u in users {
            net.add_arc(1 + u as usize, st, 1);
        }
        net.add_arc(st, sink, i64::from(*cap));
    }
    net.max_flow(source, sink)
}

prop_compose! {
    fn station_instances()(num_users in 1usize..15)(
        num_users in Just(num_users),
        stations in vec(
            (0u32..5, vec(0u32..15, 0..10)),
            0..6
        )
    ) -> (usize, Vec<(u32, Vec<u32>)>) {
        let stations = stations
            .into_iter()
            .map(|(cap, users)| {
                let mut users: Vec<u32> = users
                    .into_iter()
                    .map(|u| u % num_users as u32)
                    .collect();
                users.sort_unstable();
                users.dedup();
                (cap, users)
            })
            .collect();
        (num_users, stations)
    }
}

proptest! {
    #[test]
    fn matching_cardinality_equals_max_flow((num_users, stations) in station_instances()) {
        let matching = CapacitatedMatching::solve(num_users, &stations);
        let flow = flow_value(num_users, &stations);
        prop_assert_eq!(matching.matched_count() as i64, flow);
    }

    #[test]
    fn matching_respects_capacity_and_coverage((num_users, stations) in station_instances()) {
        let matching = CapacitatedMatching::solve(num_users, &stations);
        let mut loads = vec![0u32; stations.len()];
        for (user, st) in matching.assignment().iter().enumerate() {
            if let Some(st) = *st {
                prop_assert!(stations[st].1.contains(&(user as u32)));
                loads[st] += 1;
            }
        }
        for (st, &load) in loads.iter().enumerate() {
            prop_assert!(load <= stations[st].0);
        }
    }

    #[test]
    fn evaluate_station_is_a_pure_query(
        (num_users, stations) in station_instances(),
        cap in 0u32..5,
        probe in vec(0u32..15, 0..10)
    ) {
        let mut matching = CapacitatedMatching::solve(num_users, &stations);
        let probe: Vec<u32> = {
            let mut p: Vec<u32> = probe.into_iter().map(|u| u % num_users as u32).collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        let before = matching.assignment().to_vec();
        let matched_before = matching.matched_count();
        let g1 = matching.evaluate_station(cap, &probe);
        let g2 = matching.evaluate_station(cap, &probe);
        prop_assert_eq!(g1, g2);
        prop_assert_eq!(matching.assignment(), &before[..]);
        prop_assert_eq!(matching.matched_count(), matched_before);
    }

    #[test]
    fn nested_matroid_satisfies_axioms(
        depths in vec(proptest::option::of(0usize..3), 1..8),
        q0 in 0usize..8,
        q1 in 0usize..5,
        q2 in 0usize..3,
    ) {
        let m = NestedFamilyMatroid::new(depths, vec![q0, q1, q2]);
        prop_assert!(check_axioms_exhaustive(&m).is_ok());
    }

    #[test]
    fn partition_matroid_satisfies_axioms(
        parts in vec(0usize..3, 1..8),
        budgets in vec(0usize..4, 3..4),
    ) {
        let m = PartitionMatroid::new(parts, budgets);
        prop_assert!(check_axioms_exhaustive(&m).is_ok());
    }

    #[test]
    fn matroid_can_extend_consistent_with_independence(
        depths in vec(proptest::option::of(0usize..3), 1..8),
        q in vec(0usize..6, 3..4),
        set_bits in 0usize..256,
        e in 0usize..8,
    ) {
        let m = NestedFamilyMatroid::new(depths.clone(), q);
        let n = depths.len();
        let e = e % n;
        let set: Vec<usize> = (0..n)
            .filter(|&i| i != e && set_bits >> i & 1 == 1)
            .collect();
        if m.is_independent(&set) {
            let mut with = set.clone();
            with.push(e);
            prop_assert_eq!(m.can_extend(&set, e), m.is_independent(&with));
        }
    }

    #[test]
    fn bfs_hops_is_a_metric_on_random_graphs(
        edges in vec((0usize..12, 0usize..12), 0..30)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        let g = Graph::from_edges(12, edges);
        // Symmetry and triangle inequality on a sample of triples.
        for u in 0..4 {
            for v in 0..4 {
                prop_assert_eq!(hop_distance(&g, u, v), hop_distance(&g, v, u));
                for w in 0..4 {
                    if let (Some(duv), Some(dvw)) =
                        (hop_distance(&g, u, v), hop_distance(&g, v, w))
                    {
                        let duw = hop_distance(&g, u, w).expect("reachable via v");
                        prop_assert!(duw <= duv + dvw);
                    }
                }
            }
        }
        // BFS layers differ by exactly one along edges.
        let d = bfs_hops(&g, 0);
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u], d[v]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }

    #[test]
    fn prim_matches_kruskal_on_random_weighted_graphs(
        weights in vec(1u32..100, 45) // complete graph on 10 nodes
    ) {
        let k = 10;
        let mut matrix = vec![vec![None; k]; k];
        let mut edges = Vec::new();
        let mut it = weights.into_iter();
        // Symmetric writes (`matrix[u][v]` and `matrix[v][u]`) don't
        // translate to a disjoint iterator borrow.
        #[allow(clippy::needless_range_loop)]
        for u in 0..k {
            for v in u + 1..k {
                let w = it.next().expect("45 weights for K10");
                matrix[u][v] = Some(w);
                matrix[v][u] = Some(w);
                edges.push((u, v, w));
            }
        }
        let prim_total: u32 = prim_mst(&matrix).expect("complete graph").iter().map(|e| e.2).sum();
        edges.sort_by_key(|e| e.2);
        let mut uf = UnionFind::new(k);
        let kruskal_total: u32 = edges
            .into_iter()
            .filter(|&(u, v, _)| uf.union(u, v))
            .map(|e| e.2)
            .sum();
        prop_assert_eq!(prim_total, kruskal_total);
    }

    #[test]
    fn incremental_flow_matches_fresh_flow(
        first in vec((0usize..8, 0usize..8, 0i64..10), 0..14),
        second in vec((0usize..8, 0usize..8, 0i64..10), 0..14),
    ) {
        let clean = |arcs: &[(usize, usize, i64)]| -> Vec<(usize, usize, i64)> {
            arcs.iter().copied().filter(|&(u, v, _)| u != v).collect()
        };
        let (first, second) = (clean(&first), clean(&second));
        let mut incremental = FlowNetwork::new(8);
        for &(u, v, c) in &first {
            incremental.add_arc(u, v, c);
        }
        let f1 = incremental.max_flow(0, 7);
        for &(u, v, c) in &second {
            incremental.add_arc(u, v, c);
        }
        let f2 = incremental.max_flow(0, 7);

        let mut fresh = FlowNetwork::new(8);
        for &(u, v, c) in first.iter().chain(second.iter()) {
            fresh.add_arc(u, v, c);
        }
        prop_assert_eq!(f1 + f2, fresh.max_flow(0, 7));
    }
}
