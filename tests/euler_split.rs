//! Fig. 2 mechanics: the Euler-path split at the heart of the
//! `O(√(s/K))` analysis. For any spanning tree of the optimum, the
//! doubled-but-one tree has an open Eulerian path with `2K − 2` node
//! visits; splitting it into `Δ = ⌈(2K−2)/L⌉` segments of `L` leaves
//! one segment carrying at least `1/Δ` of the tree's total value —
//! the pigeonhole step of Theorem 1.

use uavnet::graph::euler::{
    edge_multiplicities, eulerian_path, is_tree, open_euler_path_of_tree, split_into_segments,
};
use uavnet::graph::Graph;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random labelled tree over `n` nodes (random attachment).
fn random_tree(rng: &mut SmallRng, n: usize) -> Vec<(usize, usize)> {
    (1..n).map(|v| (v, rng.gen_range(0..v))).collect()
}

#[test]
fn random_trees_yield_open_euler_paths() {
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..50 {
        let k = rng.gen_range(2..40);
        let tree = random_tree(&mut rng, k);
        assert!(is_tree(k, &tree));
        let path = open_euler_path_of_tree(k, &tree);
        assert_eq!(path.len(), 2 * k - 2, "K={k}");
        // Exactly one tree edge is traversed once, the rest twice.
        let mult = edge_multiplicities(&path);
        assert_eq!(mult.len(), tree.len());
        assert_eq!(mult.values().filter(|&&c| c == 1).count(), 1);
        assert!(mult.values().all(|&c| c == 1 || c == 2));
        // The path is a walk in the tree graph.
        let g = Graph::from_edges(k, tree.iter().copied());
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        // Every node is visited.
        let mut seen = path.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), k);
    }
}

#[test]
fn pigeonhole_segment_carries_its_share() {
    let mut rng = SmallRng::seed_from_u64(23);
    for _ in 0..50 {
        let k = rng.gen_range(3..30);
        let tree = random_tree(&mut rng, k);
        let path = open_euler_path_of_tree(k, &tree);
        // Random non-negative "coverage" per tree node.
        let value: Vec<u64> = (0..k).map(|_| rng.gen_range(0..100)).collect();
        let total: u64 = value.iter().sum();
        let l = rng.gen_range(1..=path.len());
        let segments = split_into_segments(&path, l);
        let delta = path.len().div_ceil(l);
        assert_eq!(segments.len(), delta);
        // One segment covers ≥ total/Δ of the value (counting each
        // node once per segment).
        let best: u64 = segments
            .iter()
            .map(|seg| {
                let mut nodes: Vec<usize> = seg.to_vec();
                nodes.sort_unstable();
                nodes.dedup();
                nodes.iter().map(|&v| value[v]).sum()
            })
            .max()
            .unwrap();
        assert!(
            (best as u128) * (delta as u128) >= total as u128,
            "K={k} L={l}: best {best} * Δ {delta} < total {total}"
        );
    }
}

#[test]
fn paper_fig2_worked_example() {
    // The paper's Fig. 2: K = 11 nodes, a specific tree, L = 10.
    // v*1..v*11 mapped to 0..10: the tree of Fig. 2(a):
    // a path 4-1-2-7-8-3-9 with branches 1-5, 2-6, 8-10(v*11)… we use
    // the caption's structure loosely: any 11-node tree gives a
    // 20-visit path and Δ = 2 segments.
    let tree = vec![
        (3, 0),
        (0, 1),
        (1, 6),
        (6, 7),
        (7, 2),
        (2, 8),
        (0, 4),
        (1, 5),
        (7, 9),
        (9, 10),
    ];
    assert!(is_tree(11, &tree));
    let path = open_euler_path_of_tree(11, &tree);
    assert_eq!(path.len(), 20); // 2K − 2 = 20 visits (2K − 3 edges)
    let segments = split_into_segments(&path, 10);
    assert_eq!(segments.len(), 2); // Δ = ⌈20/10⌉ = 2, as in Fig. 2(c)
    assert!(segments.iter().all(|s| s.len() == 10));
}

#[test]
fn doubled_tree_has_closed_tour() {
    // Doubling *every* edge gives an Eulerian circuit with 2(K−1)+1
    // visits — the classical TSP-style bound the paper improves on by
    // leaving one edge single.
    let tree = vec![(0, 1), (1, 2), (1, 3)];
    let mut doubled = tree.clone();
    doubled.extend(tree.iter().copied());
    let tour = eulerian_path(4, &doubled).unwrap();
    assert_eq!(tour.len(), 2 * 3 + 1);
    assert_eq!(tour.first(), tour.last());
}
