//! Property tests for the differential-verification harness: the
//! assignment oracle pair agrees on arbitrary deployments, the
//! validator accepts every solver output (including degenerate
//! instances), fault injection + repair is panic-free and
//! validate-clean across random faults, and the incremental solver
//! loop tracks a cold solve across random delta interleavings
//! (verify oracle 7).

use proptest::prelude::*;
use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg, assign_users, assign_users_max_flow, check_assignment_oracles, check_incremental,
    inject_and_repair, ApproxConfig, CoreError, Delta, Fault, Instance, User,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

fn build_instance(
    seed_users: &[(f64, f64)],
    caps: &[u32],
    uav_range: f64,
    user_range: f64,
) -> Instance {
    let grid = GridSpec::new(
        AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
        300.0,
        300.0,
    )
    .unwrap()
    .build();
    let mut b = Instance::builder(grid, uav_range);
    for &(x, y) in seed_users {
        b.add_user(Point2::new(x, y), 2_000.0);
    }
    for &cap in caps {
        b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
    }
    b.build().expect("valid instance")
}

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..1_500.0, 0.0f64..1_500.0), 0..25),
        caps in proptest::collection::vec(0u32..8, 1..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        // Note the degenerate corners on purpose: zero users, and
        // zero-capacity UAVs that can relay but serve nobody.
        build_instance(&seed_users, &caps, uav_range, user_range)
    }
}

prop_compose! {
    fn solvable_instances()(
        seed_users in proptest::collection::vec((0.0f64..1_500.0, 0.0f64..1_500.0), 1..25),
        caps in proptest::collection::vec(1u32..8, 2..6),
        uav_range in 430.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        build_instance(&seed_users, &caps, uav_range, user_range)
    }
}

/// Arbitrary (possibly nonsensical but in-range) deployments: distinct
/// UAVs on distinct locations.
fn arbitrary_placements(instance: &Instance, picks: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut used_uavs = vec![false; instance.num_uavs()];
    let mut used_locs = vec![false; instance.num_locations()];
    let mut placements = Vec::new();
    for &(u, l) in picks {
        let (u, l) = (u % instance.num_uavs(), l % instance.num_locations());
        if !used_uavs[u] && !used_locs[l] {
            used_uavs[u] = true;
            used_locs[l] = true;
            placements.push((u, l));
        }
    }
    placements
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matching_and_max_flow_agree_everywhere(
        instance in instances(),
        picks in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
    ) {
        let placements = arbitrary_placements(&instance, &picks);
        // The full oracle (also checks load bookkeeping).
        prop_assert!(check_assignment_oracles(&instance, &placements).is_ok());
        // And the raw served counts, belt-and-braces.
        let a = assign_users(&instance, &placements);
        let b = assign_users_max_flow(&instance, &placements);
        prop_assert_eq!(a.served, b.served);
    }

    #[test]
    fn validator_accepts_every_solver_output(instance in instances()) {
        // Degenerate corners included: zero users and zero-capacity
        // fleets must produce an (empty or relay-only) valid solution,
        // not a crash.
        let sol = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
        prop_assert!(sol.validate(&instance).is_ok(), "{:?}", sol.validate(&instance));
        prop_assert!(sol.served_users() <= instance.num_users());
    }

    #[test]
    fn random_faults_repair_cleanly_or_fail_typed(
        instance in solvable_instances(),
        kill_mask in 0usize..32,
        cut_picks in proptest::collection::vec((0usize..64, 0usize..64), 0..4),
    ) {
        let sol = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
        let kills: Vec<usize> =
            (0..instance.num_uavs()).filter(|u| kill_mask >> u & 1 == 1).collect();
        let m = instance.num_locations();
        let cuts: Vec<(usize, usize)> =
            cut_picks.iter().map(|&(a, b)| (a % m, b % m)).collect();
        let faults = [Fault::KillUavs(kills), Fault::SeverLinks(cuts)];
        match inject_and_repair(&instance, &sol, &faults) {
            Ok(report) => {
                prop_assert!(report.solution.validate(&report.instance).is_ok());
                prop_assert!(report.served_after_repair <= report.served_before);
            }
            // Gateway-less instances can't hit Connect errors here, but
            // typed failures remain acceptable outcomes by contract.
            Err(CoreError::Connect(_)) | Err(CoreError::InvalidParameters(_)) => {}
            Err(e) => prop_assert!(false, "untyped failure: {e}"),
        }
    }

    #[test]
    fn delta_interleavings_stay_cold_equivalent(
        instance in solvable_instances(),
        specs in proptest::collection::vec(delta_specs(), 3..=8),
    ) {
        // Oracle 7 over random interleavings of every delta kind: the
        // incremental loop must track a cold solve after *each* delta,
        // at every sweep thread count, or fail with a typed Connect
        // error — never a panic, never a silent divergence.
        let deltas: Vec<Delta> = specs.iter().map(|s| s.realize(&instance)).collect();
        for threads in [1usize, 2, 4] {
            let config = ApproxConfig::with_s(1).threads(threads);
            match check_incremental(&instance, &config, &deltas) {
                Ok(()) | Err(CoreError::Connect(_)) => {}
                Err(e) => prop_assert!(false, "threads={threads}: {e}"),
            }
        }
    }
}

/// Instance-independent recipe for one [`Delta`], realized against a
/// concrete instance by reducing raw picks modulo its dimensions.
#[derive(Debug, Clone)]
enum DeltaSpec {
    Moves(Vec<(usize, f64, f64)>),
    Kills(usize),
    Cuts(Vec<(usize, usize)>),
    Surge(Vec<(f64, f64)>),
}

impl DeltaSpec {
    fn realize(&self, instance: &Instance) -> Delta {
        match self {
            DeltaSpec::Moves(raw) => Delta::UserMoved(
                raw.iter()
                    // Surges only *append* users, so ids below the
                    // seed population stay valid at any point in the
                    // interleaving.
                    .filter(|_| instance.num_users() > 0)
                    .map(|&(id, x, y)| ((id % instance.num_users()) as u32, Point2::new(x, y)))
                    .collect(),
            ),
            DeltaSpec::Kills(mask) => Delta::KillUavs(
                (0..instance.num_uavs())
                    .filter(|u| mask >> u & 1 == 1)
                    .collect(),
            ),
            DeltaSpec::Cuts(raw) => {
                let m = instance.num_locations();
                Delta::SeverLinks(raw.iter().map(|&(a, b)| (a % m, b % m)).collect())
            }
            DeltaSpec::Surge(raw) => Delta::UserSurge(
                raw.iter()
                    .map(|&(x, y)| User {
                        pos: Point2::new(x, y),
                        min_rate_bps: 2_000.0,
                    })
                    .collect(),
            ),
        }
    }
}

prop_compose! {
    fn delta_specs()(
        kind in 0usize..4,
        moves in proptest::collection::vec(
            (0usize..64, 0.0f64..1_500.0, 0.0f64..1_500.0), 1..6),
        kill_mask in 0usize..32,
        cuts in proptest::collection::vec((0usize..64, 0usize..64), 1..4),
        surge in proptest::collection::vec((0.0f64..1_500.0, 0.0f64..1_500.0), 1..5),
    ) -> DeltaSpec {
        match kind {
            0 => DeltaSpec::Moves(moves),
            1 => DeltaSpec::Kills(kill_mask),
            2 => DeltaSpec::Cuts(cuts),
            _ => DeltaSpec::Surge(surge),
        }
    }
}
