//! Theorem 1 sanity: on tiny instances where the exact optimum is
//! computable, `approAlg` must clear its proven `1/(3Δ)` floor — and
//! in practice lands far closer to the optimum.

use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg, exact_optimum, theorem1_ratio_holds, ApproxConfig, Instance, SegmentPlan,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tiny_random_instance(rng: &mut SmallRng) -> Instance {
    // 3×3 grid, ≤ 3 UAVs — small enough for the exhaustive solver.
    let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
        .unwrap()
        .build();
    let mut b = Instance::builder(grid, rng.gen_range(350.0..650.0));
    let n = rng.gen_range(3..12);
    for _ in 0..n {
        b.add_user(
            Point2::new(rng.gen_range(0.0..900.0), rng.gen_range(0.0..900.0)),
            2_000.0,
        );
    }
    let k = rng.gen_range(1..4);
    for _ in 0..k {
        b.add_uav(
            rng.gen_range(1..5),
            UavRadio::new(30.0, 5.0, rng.gen_range(250.0..500.0)),
        );
    }
    b.build().unwrap()
}

#[test]
fn approx_clears_its_ratio_floor_on_tiny_instances() {
    let mut rng = SmallRng::seed_from_u64(31);
    let mut total_apx = 0usize;
    let mut total_opt = 0usize;
    for round in 0..20 {
        let instance = tiny_random_instance(&mut rng);
        let opt = exact_optimum(&instance).unwrap();
        opt.validate(&instance).unwrap();
        for s in 1..=instance.num_uavs().min(2) {
            let apx = approx_alg(&instance, &ApproxConfig::with_s(s).threads(1)).unwrap();
            apx.validate(&instance).unwrap();
            assert!(
                apx.served_users() <= opt.served_users(),
                "round {round}: approx above optimum?!"
            );
            let plan = SegmentPlan::optimal(instance.num_uavs(), s).unwrap();
            // Integer form of `served ≥ opt / (3Δ)`: the float-floor
            // version could demand one user too many when `opt` is an
            // exact multiple of 3Δ.
            assert!(
                theorem1_ratio_holds(apx.served_users(), opt.served_users(), plan.delta()),
                "round {round} s={s}: approx {} below the 1/(3Δ) floor, Δ={} (opt {})",
                apx.served_users(),
                plan.delta(),
                opt.served_users()
            );
            if s == 1 {
                total_apx += apx.served_users();
                total_opt += opt.served_users();
            }
        }
    }
    // Aggregate quality: far above the worst-case floor.
    assert!(
        10 * total_apx >= 8 * total_opt,
        "aggregate approx {total_apx} below 80% of optimum {total_opt}"
    );
}

#[test]
fn literal_paper_configuration_clears_the_floor_too() {
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..10 {
        let instance = tiny_random_instance(&mut rng);
        let opt = exact_optimum(&instance).unwrap();
        let config = ApproxConfig::with_s(1)
            .prune_chain(false)
            .prune_empty_seeds(false)
            .leftover_deployment(false)
            .threads(1);
        let apx = approx_alg(&instance, &config).unwrap();
        apx.validate(&instance).unwrap();
        let plan = SegmentPlan::optimal(instance.num_uavs(), 1).unwrap();
        assert!(theorem1_ratio_holds(
            apx.served_users(),
            opt.served_users(),
            plan.delta()
        ));
    }
}

#[test]
fn heterogeneity_awareness_pays_on_a_crafted_instance() {
    // Two clusters: 6 users near cell 0, 2 users near cell 8; fleet =
    // one capacity-6 UAV listed *last*. Index-order baselines put the
    // big UAV wherever their first pick lands; approAlg must send the
    // big one to the big cluster.
    let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
        .unwrap()
        .build();
    let mut b = Instance::builder(grid, 450.0);
    // Dense cluster tight around cell 0's center, out of a 280 m radio's
    // reach from the neighboring cell.
    for i in 0..6 {
        b.add_user(Point2::new(100.0 + 6.0 * i as f64, 150.0), 2_000.0);
    }
    // Small cluster at cell 1's center (adjacent to cell 0).
    for i in 0..2 {
        b.add_user(Point2::new(440.0 + 15.0 * i as f64, 150.0), 2_000.0);
    }
    b.add_uav(2, UavRadio::new(30.0, 5.0, 280.0));
    b.add_uav(6, UavRadio::new(30.0, 5.0, 280.0));
    let instance = b.build().unwrap();

    let apx = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
    apx.validate(&instance).unwrap();
    // Capacity-aware optimum: cap-6 UAV on the 6-user cell, cap-2 UAV
    // on the adjacent 2-user cell — all 8 served. An index-order
    // placement (cap-2 first on the dense cell) reaches only 2 + 6
    // after optimal assignment *if* it also finds both cells; the key
    // assertion is that approAlg attains the full 8.
    assert_eq!(
        apx.served_users(),
        8,
        "approAlg served only {}",
        apx.served_users()
    );
    // And the placement is the capacity-aware one.
    let big_placement = apx
        .deployment()
        .placements()
        .iter()
        .find(|&&(uav, _)| uav == 1)
        .expect("big UAV deployed");
    let (col, row) = instance.grid().col_row(big_placement.1);
    assert!(
        col <= 1 && row <= 1,
        "big UAV parked at ({col},{row}), not on the dense cluster"
    );
}
