//! Fault-injection acceptance suite: on a solved FIG6-scale scenario,
//! killing any single UAV (and harsher faults) must yield a repaired,
//! validate-clean solution or a *typed* error — never a panic.

use uavnet::channel::UavRadio;
use uavnet::core::{
    approx_alg, inject_and_repair, ApproxConfig, CoreError, Fault, Instance, Solution, User,
};
use uavnet::geom::{AreaSpec, GridSpec, Point2};
use uavnet::workload::ScenarioSpec;

fn fig6_scale() -> (Instance, Solution) {
    // The paper's §IV-A environment at reduced scale: 40 users, 8
    // heterogeneous UAVs.
    let spec = ScenarioSpec::paper_figure(40, 8, 11).expect("valid spec");
    let instance = spec.instantiate().expect("instantiable scenario");
    let solution = approx_alg(&instance, &ApproxConfig::with_s(2)).expect("solvable scenario");
    solution.validate(&instance).expect("clean solve");
    (instance, solution)
}

#[test]
fn any_single_uav_loss_is_survivable() {
    let (instance, solution) = fig6_scale();
    assert!(solution.served_users() > 0, "degenerate scenario");
    for uav in 0..instance.num_uavs() {
        let report = inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![uav])])
            .unwrap_or_else(|e| panic!("killing UAV {uav} must be repairable, got {e}"));
        report
            .solution
            .validate(&report.instance)
            .unwrap_or_else(|e| panic!("repair after killing UAV {uav} is invalid: {e}"));
        assert!(
            report
                .solution
                .deployment()
                .placements()
                .iter()
                .all(|&(u, _)| u != uav),
            "killed UAV {uav} still deployed"
        );
        assert!(report.served_after_repair <= report.served_before);
    }
}

#[test]
fn repair_recovers_at_least_the_post_fault_service() {
    // The repair may relocate nothing (survivors already connected),
    // but it must never end below what the raw survivors served.
    let (instance, solution) = fig6_scale();
    for uav in 0..instance.num_uavs() {
        let report =
            inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![uav])]).unwrap();
        assert!(
            report.served_after_repair >= report.served_after_fault
                || report.dropped_placements > 0,
            "killing UAV {uav}: repair served {} < post-fault {} without dropping anyone",
            report.served_after_repair,
            report.served_after_fault
        );
    }
}

#[test]
fn pair_losses_and_link_cuts_never_panic() {
    let (instance, solution) = fig6_scale();
    let links: Vec<(usize, usize)> = instance.location_graph().edges().collect();
    for a in 0..instance.num_uavs() {
        for b in (a + 1)..instance.num_uavs() {
            let report =
                inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![a, b])]).unwrap();
            report.solution.validate(&report.instance).unwrap();
        }
    }
    // Sample link cuts across the graph (every 7th edge keeps the
    // suite fast while touching all regions).
    for chunk in links.chunks(7) {
        let report =
            inject_and_repair(&instance, &solution, &[Fault::SeverLinks(chunk.to_vec())]).unwrap();
        report.solution.validate(&report.instance).unwrap();
    }
}

#[test]
fn surge_plus_loss_compound_fault_is_survivable() {
    let (instance, solution) = fig6_scale();
    let surge: Vec<User> = (0..10)
        .map(|i| User {
            pos: Point2::new(200.0 + 30.0 * i as f64, 300.0),
            min_rate_bps: 2_000.0,
        })
        .collect();
    let report = inject_and_repair(
        &instance,
        &solution,
        &[Fault::KillUavs(vec![0]), Fault::UserSurge(surge)],
    )
    .unwrap();
    assert_eq!(report.surged_users, 10);
    assert_eq!(report.instance.num_users(), instance.num_users() + 10);
    report.solution.validate(&report.instance).unwrap();
}

#[test]
fn gateway_scenarios_repair_or_fail_typed() {
    // With a gateway pinned at a corner, repairs must keep the relay
    // chain to it — or fail with a typed connect error, never panic.
    let spec = ScenarioSpec::builder()
        .users(40)
        .uavs(8)
        .gateway_m(50.0, 50.0)
        .seed(11)
        .build()
        .expect("valid spec");
    let instance = spec.instantiate().expect("instantiable scenario");
    let solution = match approx_alg(&instance, &ApproxConfig::with_s(2)) {
        Ok(s) => s,
        // A gateway the fleet cannot reach at all is a legitimate
        // typed outcome for the *solver*; nothing left to fault.
        Err(CoreError::Connect(_)) => return,
        Err(e) => panic!("unexpected solver error: {e}"),
    };
    for uav in 0..instance.num_uavs() {
        match inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![uav])]) {
            Ok(report) => report.solution.validate(&report.instance).unwrap(),
            Err(CoreError::Connect(_)) | Err(CoreError::InvalidParameters(_)) => {}
            Err(e) => panic!("killing UAV {uav}: untyped failure {e}"),
        }
    }
}

#[test]
fn sweep_worker_panic_is_a_typed_error_not_an_abort() {
    // A panicking worker thread must not take the process down (the
    // old join().expect() re-raised it): every remaining worker is
    // joined and the panic surfaces as CoreError::Sweep carrying the
    // original payload.
    let (instance, _) = fig6_scale();
    for threads in [1usize, 2, 4] {
        let config = ApproxConfig::with_s(2)
            .threads(threads)
            .inject_worker_panic_at(0);
        match approx_alg(&instance, &config) {
            Err(CoreError::Sweep(msg)) => assert!(
                msg.contains("injected worker panic"),
                "payload lost: {msg:?}"
            ),
            Ok(_) => panic!("threads={threads}: injected panic was swallowed"),
            Err(e) => panic!("threads={threads}: wrong error type {e}"),
        }
    }
    // A rank past the enumeration never fires: the sweep completes.
    let config = ApproxConfig::with_s(2).inject_worker_panic_at(u64::MAX);
    approx_alg(&instance, &config).expect("unreached injection rank must be harmless");
}

#[test]
fn oversized_location_grid_is_a_typed_substrate_error() {
    // 256 × 256 = 65 536 candidate cells — one past what the u16 hop
    // matrix can address. The solver must refuse with a typed error
    // before attempting the multi-gigabyte substrate allocation.
    let grid = GridSpec::new(
        AreaSpec::new(12_800.0, 12_800.0, 500.0).unwrap(),
        50.0,
        500.0,
    )
    .unwrap()
    .build();
    assert!(grid.num_cells() >= u16::MAX as usize);
    let mut builder = Instance::builder(grid, 75.0);
    builder.add_user(Point2::new(100.0, 100.0), 2_000.0);
    builder.add_uav(4, UavRadio::new(30.0, 5.0, 500.0));
    let instance = builder.build().expect("oversized grid still builds");
    match approx_alg(&instance, &ApproxConfig::with_s(1)) {
        Err(CoreError::Substrate(e)) => {
            assert!(e.to_string().contains("at most"), "{e}");
        }
        Ok(_) => panic!("65 536-cell sweep cannot have succeeded"),
        Err(e) => panic!("wrong error type: {e}"),
    }
}

#[test]
fn repair_is_idempotent_under_empty_reinjection() {
    // Regression: a second repair pass over an already-repaired
    // scenario used to double-count spare relays (UAVs spent as
    // relays re-entered the spare pool as "undeployed"). Reinjecting
    // zero faults must be a fixed point: identical placements, same
    // service, no fresh relays spent.
    let (instance, solution) = fig6_scale();
    let first = inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![0])]).unwrap();
    let second = first.reinject(&[]).unwrap();
    let mut a = first.solution.deployment().placements().to_vec();
    let mut b = second.solution.deployment().placements().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "empty reinjection moved the fleet");
    assert_eq!(second.served_after_repair, first.served_after_repair);
    assert_eq!(second.relays_spent, 0, "idle repair spent spare relays");
    assert_eq!(second.dropped_placements, 0);
    assert_eq!(second.killed_uavs, first.killed_uavs);
}

#[test]
fn chained_repairs_never_resurrect_dead_uavs() {
    // Regression: repairing kill(a) then kill(b) through the plain
    // inject_and_repair lost the memory that `a` was dead, so the
    // second repair could re-deploy `a` as a relay (a zombie relay the
    // real fleet no longer has). `reinject` carries the casualty list.
    let (instance, solution) = fig6_scale();
    for a in 0..instance.num_uavs() {
        let first = match inject_and_repair(&instance, &solution, &[Fault::KillUavs(vec![a])]) {
            Ok(r) => r,
            Err(CoreError::Connect(_)) => continue,
            Err(e) => panic!("killing UAV {a}: {e}"),
        };
        for b in 0..instance.num_uavs() {
            if b == a {
                continue;
            }
            let second = match first.reinject(&[Fault::KillUavs(vec![b])]) {
                Ok(r) => r,
                Err(CoreError::Connect(_)) => continue,
                Err(e) => panic!("killing UAV {b} after {a}: {e}"),
            };
            assert!(
                second.killed_uavs.contains(&a) && second.killed_uavs.contains(&b),
                "casualty list lost a kill: {:?}",
                second.killed_uavs
            );
            for &(uav, _) in second.solution.deployment().placements() {
                assert!(
                    uav != a && uav != b,
                    "dead UAV {uav} resurrected after chained kills ({a}, {b})"
                );
            }
            second.solution.validate(&second.instance).unwrap();
        }
    }
}

#[test]
fn malformed_faults_are_rejected_not_panicked() {
    let (instance, solution) = fig6_scale();
    assert!(matches!(
        inject_and_repair(
            &instance,
            &solution,
            &[Fault::KillUavs(vec![instance.num_uavs()])]
        ),
        Err(CoreError::InvalidParameters(_))
    ));
    assert!(matches!(
        inject_and_repair(
            &instance,
            &solution,
            &[Fault::SeverLinks(vec![(0, instance.num_locations())])]
        ),
        Err(CoreError::InvalidParameters(_))
    ));
}
