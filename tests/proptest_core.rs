//! Property tests over the full deployment pipeline: for random small
//! scenarios, every algorithm's solution satisfies the problem's hard
//! invariants.

use proptest::prelude::*;
use uavnet::baselines::{DeploymentAlgorithm, GreedyAssign, MaxThroughput, Mcs, RandomConnected};
use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg, assign_users, ApproxConfig, Instance};
use uavnet::geom::{AreaSpec, GridSpec, Point2};

prop_compose! {
    fn instances()(
        seed_users in proptest::collection::vec((0.0f64..1_500.0, 0.0f64..1_500.0), 1..25),
        caps in proptest::collection::vec(1u32..8, 1..5),
        uav_range in 320.0f64..700.0,
        user_range in 250.0f64..500.0,
    ) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, uav_range);
        for (x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for cap in caps {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, user_range));
        }
        b.build().expect("valid instance")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn approx_solutions_always_validate(instance in instances()) {
        let sol = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
        prop_assert!(sol.validate(&instance).is_ok(), "{:?}", sol.validate(&instance));
        // Hard caps.
        prop_assert!(sol.served_users() <= instance.num_users());
        let cap_total: u32 = sol
            .deployment()
            .placements()
            .iter()
            .map(|&(u, _)| instance.uavs()[u].capacity)
            .sum();
        prop_assert!(sol.served_users() <= cap_total as usize);
        // The summary agrees with the raw numbers.
        let summary = sol.summary(&instance);
        prop_assert_eq!(summary.served, sol.served_users());
        prop_assert!(summary.load_fairness > 0.0 && summary.load_fairness <= 1.0 + 1e-12);
        prop_assert!(summary.mean_utilization >= 0.0 && summary.mean_utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn baselines_always_validate(instance in instances()) {
        let algos: Vec<Box<dyn DeploymentAlgorithm>> = vec![
            Box::new(Mcs),
            Box::new(GreedyAssign),
            Box::new(MaxThroughput),
            Box::new(RandomConnected::new(5)),
        ];
        for algo in algos {
            let sol = algo.deploy(&instance).unwrap();
            prop_assert!(
                sol.validate(&instance).is_ok(),
                "{}: {:?}",
                algo.name(),
                sol.validate(&instance)
            );
        }
    }

    #[test]
    fn rescoring_a_deployment_is_idempotent(instance in instances()) {
        let sol = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
        let again = assign_users(&instance, sol.deployment().placements());
        // The optimal assignment value is unique even if the matching
        // itself is not.
        prop_assert_eq!(again.served, sol.served_users());
    }

    #[test]
    fn leftover_pass_never_hurts(instance in instances()) {
        let with = approx_alg(&instance, &ApproxConfig::with_s(1).threads(1)).unwrap();
        let without = approx_alg(
            &instance,
            &ApproxConfig::with_s(1).threads(1).leftover_deployment(false),
        )
        .unwrap();
        prop_assert!(with.served_users() >= without.served_users());
    }
}
