//! End-to-end determinism and reproducibility of the full pipeline:
//! spec → instance → approAlg → solution.

use uavnet::core::{approx_alg, approx_alg_with_stats, ApproxConfig};
use uavnet::workload::{FleetStyle, ScenarioSpec, UserDistribution};

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::builder()
        .area_m(1_800.0, 1_800.0)
        .cell_m(300.0)
        .users(90)
        .distribution(UserDistribution::FatTailed {
            clusters: 3,
            zipf_exponent: 1.4,
        })
        .uavs(6)
        .capacity_range(5, 25)
        .seed(seed)
        .build()
        .expect("valid spec")
}

#[test]
fn pipeline_is_bit_deterministic() {
    let a = {
        let inst = spec(5).instantiate().unwrap();
        approx_alg(&inst, &ApproxConfig::with_s(2).threads(1)).unwrap()
    };
    let b = {
        let inst = spec(5).instantiate().unwrap();
        approx_alg(&inst, &ApproxConfig::with_s(2).threads(3)).unwrap()
    };
    assert_eq!(a.served_users(), b.served_users());
    assert_eq!(a.deployment().placements(), b.deployment().placements());
    assert_eq!(a.user_placement(), b.user_placement());
}

#[test]
fn different_seeds_give_different_scenarios() {
    let a = spec(5).instantiate().unwrap();
    let b = spec(6).instantiate().unwrap();
    assert_ne!(a.users(), b.users());
}

#[test]
fn stats_describe_the_sweep() {
    let inst = spec(7).instantiate().unwrap();
    let (sol, stats) = approx_alg_with_stats(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
    sol.validate(&inst).unwrap();
    assert_eq!(stats.plan.s(), 2);
    assert_eq!(stats.plan.k(), 6);
    assert!(stats.seed_pool_size <= inst.num_locations());
    assert_eq!(
        stats.subsets_enumerated,
        stats.subsets_evaluated + stats.subsets_chain_pruned
    );
    assert!(stats.subsets_unconnectable <= stats.subsets_evaluated);
    let seeds = stats.best_seeds.expect("a deployment was found");
    assert_eq!(seeds.len(), 2);
    // The winning seeds are deployed locations.
    let locs = sol.deployment().locations();
    for s in seeds {
        assert!(locs.contains(&s), "seed {s} not deployed: {locs:?}");
    }
}

#[test]
fn capacity_scaled_radios_flow_through() {
    let spec = ScenarioSpec::builder()
        .area_m(1_500.0, 1_500.0)
        .cell_m(300.0)
        .users(60)
        .uavs(5)
        .capacity_range(5, 40)
        .fleet_style(FleetStyle::CapacityScaledRadio)
        .seed(3)
        .build()
        .unwrap();
    let inst = spec.instantiate().unwrap();
    // Radios differ across the fleet.
    let ranges: std::collections::BTreeSet<u64> = inst
        .uavs()
        .iter()
        .map(|u| u.radio.user_range_m() as u64)
        .collect();
    assert!(ranges.len() > 1, "expected heterogeneous radios");
    let sol = approx_alg(&inst, &ApproxConfig::with_s(1)).unwrap();
    sol.validate(&inst).unwrap();
}

#[test]
fn more_uavs_never_hurt_at_fixed_seeds() {
    let served = |k: usize| {
        let spec = ScenarioSpec::builder()
            .area_m(1_800.0, 1_800.0)
            .cell_m(300.0)
            .users(90)
            .uavs(k)
            .capacity_range(5, 25)
            .seed(5)
            .build()
            .unwrap();
        let inst = spec.instantiate().unwrap();
        approx_alg(&inst, &ApproxConfig::with_s(1))
            .unwrap()
            .served_users()
    };
    // Not a theorem (fleets are re-sampled per K), but on this seed
    // the trend must be visibly upward.
    let s2 = served(2);
    let s6 = served(6);
    let s10 = served(10);
    assert!(s6 >= s2, "{s2} -> {s6}");
    assert!(s10 >= s6, "{s6} -> {s10}");
}
